"""Stage 2 join processors.

:class:`MMQJPJoinProcessor` implements the paper's Massively Multi-Query
Join Processing: one conjunctive query per *query template* evaluates all
member queries at once (Algorithm 1), optionally over the materialized views
of Section 5 (Algorithm 4).  :class:`SequentialJoinProcessor` is the paper's
baseline: the FOLLOWED BY / JOIN operator of every query is evaluated
separately, one query at a time.

Both processors consume the same inputs — the join state (previous
documents) and the current document's witness relations — and produce the
same :class:`~repro.core.results.Match` records, which is what the
equivalence tests in ``tests/`` check.

Three knobs keep the per-document hot path proportional to the *relevant*
work (all default on; off reproduces the previous behavior for ablation):

* ``plan_cache`` — conjunctive queries are evaluated through compiled,
  cached plans (:mod:`repro.relational.plan`) instead of being re-planned
  on every call;
* ``prune_dispatch`` — templates (MMQJP) / queries (Sequential) whose
  right-hand-side variables the current document did not bind are skipped
  outright via an inverted index (:mod:`repro.core.relevance`);
* ``delta_join`` — each conjunctive query is evaluated *outward from the
  delta*: a semi-join reduction pass restricts every state relation to the
  rows reachable from the current document's witnesses before the main
  join runs (:class:`~repro.relational.conjunctive.DeltaProgram`), with
  one :class:`~repro.relational.conjunctive.DeltaContext` per document so
  reductions are shared across templates.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.config import RuntimeConfig
from repro.core.costs import CostBreakdown
from repro.core.materialize import (
    MaterializedViews,
    ViewCache,
    compute_materialized_views,
    maintain_view_cache,
)
from repro.core.relevance import RelevanceIndex
from repro.core.results import Match
from repro.core.state import JoinState
from repro.core.witnesses import WitnessRelations
from repro.relational.conjunctive import (
    ConjunctiveQuery,
    DeltaContext,
    evaluate_conjunctive,
)
from repro.relational.database import IndexedDatabase
from repro.relational.plan import PlanCache
from repro.relational.relation import Relation
from repro.relational.terms import Const, Var
from repro.templates.join_graph import JoinGraph, Side
from repro.templates.minor import ReducedJoinGraph, reduce_join_graph
from repro.templates.registry import TemplateRegistry
from repro.xscl.ast import JoinOperator, XsclQuery


def window_satisfied(operator: JoinOperator, delta: float, window: float) -> bool:
    """Algorithm 3's temporal check for one candidate match.

    ``delta`` is ``rhs_timestamp - lhs_timestamp`` (the current document is
    always the right-hand/following event).
    """
    if operator is JoinOperator.FOLLOWED_BY:
        return 0 < delta <= window
    return 0 <= delta <= window


def _resolve_state(state: Optional[JoinState], indexing: Optional[str]) -> JoinState:
    """Resolve a processor's (state, indexing) constructor pair.

    Builds a fresh state with the requested mode when none is given;
    otherwise the mode, if specified, must agree with the state's.
    """
    if state is None:
        return JoinState(indexing=indexing if indexing is not None else "eager")
    if indexing is not None and indexing != state.indexing:
        raise ValueError(
            f"indexing={indexing!r} conflicts with the given state's "
            f"indexing={state.indexing!r}"
        )
    return state


def _resolve_plan_cache(plan_cache: "bool | PlanCache") -> Optional[PlanCache]:
    """Resolve the ``plan_cache`` knob: bool toggle or a preconfigured cache."""
    if isinstance(plan_cache, PlanCache):
        return plan_cache
    return PlanCache() if plan_cache else None


def _resolve_knobs(
    config: Optional["RuntimeConfig"],
    indexing: Optional[str],
    plan_cache: "bool | PlanCache | None",
    prune_dispatch: Optional[bool],
    delta_join: Optional[bool],
    columnar: Optional[bool] = None,
) -> tuple:
    """Fill unset processor knobs from a :class:`~repro.config.RuntimeConfig`.

    Explicit knob arguments always win; with neither a knob nor a config the
    historical defaults apply (``plan_cache=True``, ``prune_dispatch=True``,
    ``delta_join=True``, ``columnar=True``, indexing resolved by
    :func:`_resolve_state`).  ``REPRO_COLUMNAR=0`` in the environment
    downgrades a *defaulted* columnar resolution to off — the CI replay
    hook, mirroring ``REPRO_EXECUTOR`` — but never overrides an explicit
    knob or config value.
    """
    columnar_explicit = columnar is not None
    if config is not None:
        if indexing is None:
            indexing = config.indexing
        if plan_cache is None:
            plan_cache = config.plan_cache
        if prune_dispatch is None:
            prune_dispatch = config.prune_dispatch
        if delta_join is None:
            delta_join = config.delta_join
        if columnar is None:
            columnar = config.columnar
    if plan_cache is None:
        plan_cache = True
    if prune_dispatch is None:
        prune_dispatch = True
    if delta_join is None:
        delta_join = True
    if columnar is None:
        columnar = True
    if (
        columnar
        and not columnar_explicit
        and os.environ.get("REPRO_COLUMNAR") == "0"
    ):
        columnar = False
    return indexing, plan_cache, prune_dispatch, delta_join, columnar


def _empty_delta_stats() -> dict[str, int]:
    """Zeroed per-processor counters of the delta-reduction pass."""
    return {
        "documents": 0,
        "reductions_computed": 0,
        "reductions_reused": 0,
        "rows_scanned": 0,
        "rows_kept": 0,
    }


class _DeltaBatchMixin:
    """Shared delta-context plumbing and batch hooks of both processors.

    Expects the concrete processor to initialize ``delta_join`` (bool),
    ``delta_stats`` (via :func:`_empty_delta_stats`) and ``_in_batch``.
    ``begin_batch``/``end_batch`` bracket one engine-level document batch —
    no query can register or retract between a batch's documents, which is
    what lets subclasses hoist per-document fixed costs into
    :meth:`begin_batch`.
    """

    def begin_batch(self) -> None:
        """Enter batch mode (paired with :meth:`end_batch`)."""
        self._in_batch = True

    def end_batch(self) -> None:
        """Leave batch mode."""
        self._in_batch = False

    def _delta_context(self) -> Optional[DeltaContext]:
        """A fresh per-document delta context (``None`` when delta is off)."""
        if not self.delta_join:
            return None
        self.delta_stats["documents"] += 1
        return DeltaContext()

    def _fold_delta_stats(self, delta: Optional[DeltaContext]) -> None:
        if delta is None:
            return
        stats = self.delta_stats
        for key, value in delta.stats().items():
            stats[key] += value


def _build_state_env(state: JoinState, columnar: bool = False) -> IndexedDatabase:
    """The shared evaluation environment over a join state.

    The state relations are bound as *indexed* — their join keys resolve
    against live, incrementally maintained hash indexes (unless the state's
    indexing mode is ``"off"``).  The per-document witness and view
    relations are rebound ephemerally each document.  With ``columnar`` the
    environment owns a shared value dictionary and every bound relation
    carries a lazily synced columnar sidecar.
    """
    env = IndexedDatabase(indexing=state.indexing, columnar=columnar)
    for name, relation in state.relations().items():
        env.bind(name, relation, indexed=True)
    return env


class MMQJPJoinProcessor(_DeltaBatchMixin):
    """Template-based multi-query join processing (Algorithms 1, 2 and 4).

    Parameters
    ----------
    registry / state / use_view_materialization / view_cache:
        As before; the state's ``indexing`` mode determines how the shared
        evaluation environment resolves join keys.
    indexing:
        Convenience: construct the (defaulted) state with this indexing
        mode.  Must agree with ``state.indexing`` when both are given.
    plan_cache:
        Evaluate the per-template conjunctive queries through compiled
        plans (:class:`~repro.relational.plan.PlanCache`): the join order
        and all per-atom metadata are computed once per template and reused
        until the state statistics drift.  ``False`` falls back to the
        plan-per-call evaluator (ablation/equivalence baseline); a
        :class:`~repro.relational.plan.PlanCache` instance is used as-is
        (e.g. to configure its growth budget).
    prune_dispatch:
        Skip every template none of whose member queries has all its
        right-hand-side variables bound by the current document
        (relevance-pruned dispatch).  ``False`` visits every template (the
        pre-pruning behavior).
    delta_join:
        Evaluate each template's conjunctive query outward from the current
        document's witness delta: the state relations are semi-join-reduced
        to the delta-connected rows before the main join (one
        :class:`~repro.relational.conjunctive.DeltaContext` per document,
        shared across templates).  ``False`` probes the full state (the
        pre-delta behavior).
    columnar:
        Evaluate over interned-id column vectors: the evaluation
        environment owns a shared value dictionary, every bound relation
        carries a columnar sidecar, and the compiled-plan executor and
        delta-reduction passes run batch kernels over packed id vectors
        wherever possible.  ``False`` keeps the pure row path; match sets
        are identical either way.
    """

    def __init__(
        self,
        registry: TemplateRegistry,
        state: Optional[JoinState] = None,
        use_view_materialization: Optional[bool] = None,
        view_cache: Optional[ViewCache] = None,
        indexing: Optional[str] = None,
        plan_cache: "bool | PlanCache | None" = None,
        prune_dispatch: Optional[bool] = None,
        delta_join: Optional[bool] = None,
        columnar: Optional[bool] = None,
        config: Optional["RuntimeConfig"] = None,
    ):
        indexing, plan_cache, prune_dispatch, delta_join, columnar = _resolve_knobs(
            config, indexing, plan_cache, prune_dispatch, delta_join, columnar
        )
        self.registry = registry
        self.state = _resolve_state(state, indexing)
        self.use_view_materialization = bool(use_view_materialization)
        self.view_cache = view_cache
        self.costs = CostBreakdown()
        self.columnar = bool(columnar)
        self.env = _build_state_env(self.state, columnar=self.columnar)
        self._last_views: Optional[MaterializedViews] = None
        self.plan_cache: Optional[PlanCache] = _resolve_plan_cache(plan_cache)
        self.relevance: Optional[RelevanceIndex] = (
            RelevanceIndex() if prune_dispatch else None
        )
        self._relevance_seq = -1
        self.templates_skipped = 0
        self._match_positions: dict[int, tuple] = {}
        self.delta_join = bool(delta_join)
        self.delta_stats = _empty_delta_stats()
        self._in_batch = False
        self.match_filter: Optional[Callable[[str], bool]] = None

    @property
    def indexing(self) -> str:
        """The indexing mode of the join state / evaluation environment."""
        return self.state.indexing

    def set_match_filter(self, match_filter: Optional[Callable[[str], bool]]) -> None:
        """Suppress match construction for query ids the filter rejects.

        The filter receives a query id and returns whether its matches are
        worth materializing (e.g. the broker's "subscription exists and is
        active" check).  Rejected rows skip Algorithm 3 entirely — no
        :class:`~repro.core.results.Match` object is ever built — so they
        also never appear in ``num_matches`` statistics.  ``None`` restores
        the build-everything behavior.
        """
        self.match_filter = match_filter

    # ------------------------------------------------------------------ #
    # relevance dispatch
    # ------------------------------------------------------------------ #
    def _sync_relevance(self) -> None:
        """Index queries registered since the last document (incremental).

        Synced by the registry's stable ``seq`` stamps, so retracting a
        query never shifts the position this cursor remembers; a query
        cancelled before it was ever synced simply no longer appears in
        :meth:`~repro.templates.registry.TemplateRegistry.records_since`.
        """
        for record in self.registry.records_since(self._relevance_seq):
            template = record.template
            sides = template.node_sides
            assignment = record.assignment.assignment
            self.relevance.add(
                template.template_id,
                (
                    assignment[meta]
                    for meta in template.meta_order
                    if sides[meta] is Side.RIGHT
                ),
                member=record.qid,
            )
            self._relevance_seq = record.seq

    def _relevant_templates(self, witnesses: WitnessRelations) -> Optional[set]:
        """Template ids worth dispatching, or ``None`` when pruning is off."""
        if self.relevance is None:
            return None
        if not self._in_batch:
            # Inside a batch the sync is hoisted to begin_batch(): no
            # registration can happen between the batch's documents.
            self._sync_relevance()
        return self.relevance.relevant(witnesses.bound_variables())

    # ------------------------------------------------------------------ #
    # batched ingestion
    # ------------------------------------------------------------------ #
    def begin_batch(self) -> None:
        """Hoist per-document fixed costs out of a batch's document loop.

        Between the documents of one batch no query can register or
        retract, so the relevance-index sync runs once here instead of once
        per document.
        """
        if self.relevance is not None:
            self._sync_relevance()
        super().begin_batch()

    # ------------------------------------------------------------------ #
    # Algorithm 1 / Algorithm 4
    # ------------------------------------------------------------------ #
    def process(self, witnesses: WitnessRelations) -> list[Match]:
        """Evaluate all registered queries against the current document's witnesses."""
        env = self.env
        env.bind_all(witnesses.relations())
        relevant = self._relevant_templates(witnesses)
        delta = self._delta_context()

        if self.use_view_materialization and (
            relevant is None or relevant or self.view_cache is not None
        ):
            # With a view cache the views must be computed even when no
            # template is relevant: Algorithm 5 folds the current document's
            # RR slices into cached RL slices, and skipping that would leave
            # the cache missing this document's rows for future lookups.
            views = compute_materialized_views(
                self.state, witnesses, view_cache=self.view_cache, costs=self.costs
            )
            self._last_views = views
            env.bind_all(views.relations())

        matches: list[Match] = []
        seen: set[tuple] = set()
        for template in self.registry.templates:
            if relevant is not None and template.template_id not in relevant:
                self.templates_skipped += 1
                continue
            rt = self.registry.rt_relation(template)
            if not rt.rows:
                continue
            env.bind(template.rt_relation_name(), rt, indexed=True)
            cq = self.registry.cqt(template, materialized=self.use_view_materialization)
            with self.costs.measure("conjunctive_query"):
                if self.plan_cache is not None:
                    rout = self.plan_cache.evaluate(cq, env, delta=delta)
                else:
                    rout = evaluate_conjunctive(cq, env, delta=delta)
            if not rout.rows:
                continue
            with self.costs.measure("window_check"):
                positions = self._positions_of(template, rout)
                match_filter = self.match_filter
                qid_pos = positions[0]
                for row in rout.rows:
                    if match_filter is not None and not match_filter(row[qid_pos]):
                        continue  # undeliverable: never build the Match
                    match = self._row_to_match(template, positions, row, witnesses)
                    if match is not None and match.key() not in seen:
                        seen.add(match.key())
                        matches.append(match)
        self._fold_delta_stats(delta)
        return matches

    def _positions_of(self, template, rout: Relation) -> tuple:
        """Column positions of the RoutT schema, computed once per template.

        The head schema of a template's conjunctive query is fixed, so the
        per-row attribute lookups of Algorithm 3 reduce to tuple indexing.
        """
        positions = self._match_positions.get(template.template_id)
        if positions is None:
            index_of = rout.schema.index_of
            positions = (
                index_of("qid"),
                index_of("docid1"),
                index_of("wl"),
                tuple(
                    (meta, index_of(f"node_{meta}")) for meta in template.meta_order
                ),
            )
            self._match_positions[template.template_id] = positions
        return positions

    def _row_to_match(
        self, template, positions: tuple, row: tuple, witnesses: WitnessRelations
    ) -> Optional[Match]:
        """Algorithm 3: window check plus conversion of a RoutT row to a Match."""
        qid_pos, docid_pos, wl_pos, node_positions = positions
        qid = row[qid_pos]
        lhs_docid = row[docid_pos]
        window = row[wl_pos]
        record = self.registry.query(qid)
        lhs_ts = self.state.timestamp_of(lhs_docid)
        delta = witnesses.timestamp - lhs_ts
        if not window_satisfied(record.query.join.operator, delta, window):
            return None

        lhs_bindings: dict[str, int] = {}
        rhs_bindings: dict[str, int] = {}
        node_sides = template.node_sides
        assignment = record.assignment.assignment
        for meta, node_pos in node_positions:
            node = row[node_pos]
            variable = assignment[meta]
            if node_sides[meta] is Side.LEFT:
                lhs_bindings[variable] = node
            else:
                rhs_bindings[variable] = node
        return Match(
            qid=qid,
            lhs_docid=lhs_docid,
            rhs_docid=witnesses.docid,
            lhs_timestamp=lhs_ts,
            rhs_timestamp=witnesses.timestamp,
            lhs_bindings=lhs_bindings,
            rhs_bindings=rhs_bindings,
            window=window,
        )

    # ------------------------------------------------------------------ #
    # retraction
    # ------------------------------------------------------------------ #
    def remove_query(self, qid: str) -> None:
        """Retract one registered query (engine-level ``deregister_query`` path).

        Removes the query's ``RT`` tuple and relevance posting; when its
        template is left with no member queries the template's compiled
        plans and cached match positions are dropped too (the template
        entry itself is retired in place and revived on re-registration).
        """
        record = self.registry.query(qid)
        template = record.template
        self.registry.remove_query(qid)
        if self.relevance is not None:
            self.relevance.remove(qid)
        if not self.registry.has_queries(template):
            self._match_positions.pop(template.template_id, None)
            if self.plan_cache is not None:
                self.plan_cache.invalidate(self.registry.cqt(template))
                self.plan_cache.invalidate(
                    self.registry.cqt(template, materialized=True)
                )

    def drop_variables(self, variables: set[str]) -> int:
        """Reclaim join-state rows of variables no longer used by any query.

        The view cache (if any) is cleared outright: its ``RL`` slices are
        value-keyed aggregations over the state rows being dropped, and a
        stale slice would resurrect retracted rows on a future cache hit.
        """
        removed = self.state.drop_variables(variables)
        if self.view_cache is not None:
            self.view_cache.clear()
        return removed

    def clear_state(self) -> None:
        """Drop all join state and cached views (last query deregistered)."""
        self.state.clear()
        if self.view_cache is not None:
            self.view_cache.clear()
        self._last_views = None

    # ------------------------------------------------------------------ #
    # Algorithm 2 / Algorithm 5
    # ------------------------------------------------------------------ #
    def maintain_state(self, witnesses: WitnessRelations) -> None:
        """Fold the current document into the join state (and the view cache)."""
        with self.costs.measure("state_maintenance"):
            self.state.merge(witnesses)
            if self.view_cache is not None and self._last_views is not None:
                maintain_view_cache(self.view_cache, self._last_views, witnesses.docid)
            self._last_views = None

    def prune_state(self, min_timestamp: float) -> int:
        """Drop state older than ``min_timestamp`` (documents and cached slices)."""
        stale = self.state.stale_docids(min_timestamp)
        if not stale:
            return 0
        removed = self.state.drop_documents(stale)
        if self.view_cache is not None:
            self.view_cache.remove_documents(stale)
        return removed


# --------------------------------------------------------------------------- #
# the Sequential baseline
# --------------------------------------------------------------------------- #
def build_per_query_cq(qid: str, query: XsclQuery, reduced: ReducedJoinGraph) -> ConjunctiveQuery:
    """Build the stand-alone conjunctive query used by the Sequential baseline.

    The query has the same shape as a template's ``CQT`` but all variable
    names are constants and there is no ``RT`` relation — it evaluates
    exactly one XSCL query.
    """
    def node_var(key) -> Var:
        return Var(f"n_{key[0].value}_{key[1]}")

    side_nodes = sorted(reduced.nodes, key=lambda k: (k[0].value, k[1]))
    head_schema = ["qid", "docid1"] + [f"node_{k[0].value}_{k[1]}" for k in side_nodes] + ["wl"]
    head_terms = [Const(qid), Var("docid")] + [node_var(k) for k in side_nodes] + [
        Const(query.join.window)
    ]
    cq = ConjunctiveQuery(
        head_name=f"Rout_query_{qid}",
        head_schema=head_schema,
        head_terms=head_terms,
    )

    for i, (left_key, right_key) in enumerate(reduced.value_edges):
        s = Var(f"s_{i}")
        cq.add_atom("Rdoc", [Var("docid"), node_var(left_key), s])
        cq.add_atom("RdocW", [node_var(right_key), s])

    for parent, child in reduced.structural_edges:
        if parent[0] is Side.LEFT:
            cq.add_atom(
                "Rbin",
                [Var("docid"), Const(parent[1]), Const(child[1]), node_var(parent), node_var(child)],
            )
        else:
            cq.add_atom(
                "RbinW", [Const(parent[1]), Const(child[1]), node_var(parent), node_var(child)]
            )

    for key in reduced.isolated_nodes():
        if key[0] is Side.LEFT:
            cq.add_atom("Rvar", [Var("docid"), Const(key[1]), node_var(key)])
        else:
            cq.add_atom("RvarW", [Const(key[1]), node_var(key)])
    return cq


class SequentialJoinProcessor(_DeltaBatchMixin):
    """The paper's baseline: evaluate every query's join operator separately.

    ``plan_cache``, ``prune_dispatch`` and ``delta_join`` mirror the MMQJP
    processor's knobs, at per-query granularity: each query's conjunctive
    query is compiled once, queries whose RHS variables the current
    document did not bind are skipped entirely, and the per-query joins run
    over delta-reduced state relations (shared across the document's
    queries through one :class:`~repro.relational.conjunctive.DeltaContext`).
    """

    def __init__(
        self,
        state: Optional[JoinState] = None,
        indexing: Optional[str] = None,
        plan_cache: "bool | PlanCache | None" = None,
        prune_dispatch: Optional[bool] = None,
        delta_join: Optional[bool] = None,
        columnar: Optional[bool] = None,
        config: Optional[RuntimeConfig] = None,
    ):
        indexing, plan_cache, prune_dispatch, delta_join, columnar = _resolve_knobs(
            config, indexing, plan_cache, prune_dispatch, delta_join, columnar
        )
        self.state = _resolve_state(state, indexing)
        self.costs = CostBreakdown()
        self.columnar = bool(columnar)
        self.env = _build_state_env(self.state, columnar=self.columnar)
        self._queries: dict[str, tuple[XsclQuery, ReducedJoinGraph, ConjunctiveQuery]] = {}
        self.plan_cache: Optional[PlanCache] = _resolve_plan_cache(plan_cache)
        self.relevance: Optional[RelevanceIndex] = (
            RelevanceIndex() if prune_dispatch else None
        )
        self.queries_skipped = 0
        self._match_positions: dict[str, tuple] = {}
        self.delta_join = bool(delta_join)
        self.delta_stats = _empty_delta_stats()
        self._in_batch = False
        self.match_filter: Optional[Callable[[str], bool]] = None

    @property
    def indexing(self) -> str:
        """The indexing mode of the join state / evaluation environment."""
        return self.state.indexing

    def set_match_filter(self, match_filter: Optional[Callable[[str], bool]]) -> None:
        """Suppress match construction for query ids the filter rejects.

        Same contract as
        :meth:`MMQJPJoinProcessor.set_match_filter`: rejected query ids
        skip Algorithm 3 entirely, so no Match object is built for them.
        """
        self.match_filter = match_filter

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_query(self, qid: str, query: XsclQuery) -> None:
        """Register one (canonicalized) join query."""
        if qid in self._queries:
            raise ValueError(f"query id {qid!r} is already registered")
        reduced = reduce_join_graph(JoinGraph.from_query(query))
        cq = build_per_query_cq(qid, query, reduced)
        self._queries[qid] = (query, reduced, cq)
        if self.relevance is not None:
            self.relevance.add(
                qid,
                (key[1] for key in reduced.nodes if key[0] is Side.RIGHT),
                member=qid,
            )

    def remove_query(self, qid: str) -> None:
        """Retract one registered query, dropping its plan and postings."""
        try:
            _query, _reduced, cq = self._queries.pop(qid)
        except KeyError:
            raise KeyError(f"query id {qid!r} is not registered") from None
        if self.relevance is not None:
            self.relevance.remove(qid)
        if self.plan_cache is not None:
            self.plan_cache.invalidate(cq)
        self._match_positions.pop(qid, None)

    def drop_variables(self, variables: set[str]) -> int:
        """Reclaim join-state rows of variables no longer used by any query."""
        return self.state.drop_variables(variables)

    def clear_state(self) -> None:
        """Drop all join state (last query deregistered)."""
        self.state.clear()

    @property
    def num_queries(self) -> int:
        """Number of registered queries."""
        return len(self._queries)

    def query_ids(self) -> list[str]:
        """The registered query ids, in registration order."""
        return list(self._queries)

    def reduced_graph(self, qid: str) -> ReducedJoinGraph:
        """The reduced join graph of a registered query.

        Public accessor for the engine layer (which registers the graph's
        variables and edges with the Stage 1 evaluator).
        """
        return self._queries[qid][1]

    # ------------------------------------------------------------------ #
    # per-document evaluation (one query at a time)
    # ------------------------------------------------------------------ #
    def process(self, witnesses: WitnessRelations) -> list[Match]:
        """Evaluate each registered query separately against the current witnesses."""
        env = self.env
        env.bind_all(witnesses.relations())
        relevant: Optional[set] = None
        if self.relevance is not None:
            relevant = self.relevance.relevant(witnesses.bound_variables())
        delta = self._delta_context()

        matches: list[Match] = []
        seen: set[tuple] = set()
        for qid, (query, reduced, cq) in self._queries.items():
            if relevant is not None and qid not in relevant:
                self.queries_skipped += 1
                continue
            with self.costs.measure("conjunctive_query"):
                if self.plan_cache is not None:
                    rout = self.plan_cache.evaluate(cq, env, delta=delta)
                else:
                    rout = evaluate_conjunctive(cq, env, delta=delta)
            if not rout.rows:
                continue
            if self.match_filter is not None and not self.match_filter(qid):
                continue  # undeliverable query: never build its Matches
            with self.costs.measure("window_check"):
                positions = self._positions_of(qid, reduced, rout)
                for row in rout.rows:
                    match = self._row_to_match(qid, query, positions, row, witnesses)
                    if match is not None and match.key() not in seen:
                        seen.add(match.key())
                        matches.append(match)
        self._fold_delta_stats(delta)
        return matches

    def _positions_of(self, qid: str, reduced: ReducedJoinGraph, rout: Relation) -> tuple:
        """Column positions of the per-query output schema, computed once per query."""
        positions = self._match_positions.get(qid)
        if positions is None:
            index_of = rout.schema.index_of
            positions = (
                index_of("docid1"),
                tuple(
                    (key, index_of(f"node_{key[0].value}_{key[1]}"))
                    for key in reduced.nodes
                ),
            )
            self._match_positions[qid] = positions
        return positions

    def _row_to_match(
        self,
        qid: str,
        query: XsclQuery,
        positions: tuple,
        row: tuple,
        witnesses: WitnessRelations,
    ) -> Optional[Match]:
        docid_pos, node_positions = positions
        lhs_docid = row[docid_pos]
        window = query.join.window
        lhs_ts = self.state.timestamp_of(lhs_docid)
        delta = witnesses.timestamp - lhs_ts
        if not window_satisfied(query.join.operator, delta, window):
            return None
        lhs_bindings: dict[str, int] = {}
        rhs_bindings: dict[str, int] = {}
        for key, node_pos in node_positions:
            node = row[node_pos]
            if key[0] is Side.LEFT:
                lhs_bindings[key[1]] = node
            else:
                rhs_bindings[key[1]] = node
        return Match(
            qid=qid,
            lhs_docid=lhs_docid,
            rhs_docid=witnesses.docid,
            lhs_timestamp=lhs_ts,
            rhs_timestamp=witnesses.timestamp,
            lhs_bindings=lhs_bindings,
            rhs_bindings=rhs_bindings,
            window=window,
        )

    # ------------------------------------------------------------------ #
    # state maintenance
    # ------------------------------------------------------------------ #
    def maintain_state(self, witnesses: WitnessRelations) -> None:
        """Fold the current document into the join state."""
        with self.costs.measure("state_maintenance"):
            self.state.merge(witnesses)

    def prune_state(self, min_timestamp: float) -> int:
        """Drop state older than ``min_timestamp``.

        Same entry point as the MMQJP processor's (the engines prune through
        it), built on the public :meth:`~repro.core.state.JoinState.stale_docids`
        accessor rather than reaching into the state relations.
        """
        return self.state.drop_documents(self.state.stale_docids(min_timestamp))
