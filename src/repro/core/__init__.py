"""The MMQJP core: the Join Processor (Stage 2) and the two-stage engines.

* :class:`~repro.core.state.JoinState` — the join state relations
  ``Rbin`` / ``Rdoc`` / ``Rvar`` / ``RdocTS`` (Algorithm 2 maintains them).
* :class:`~repro.core.witnesses.WitnessRelations` — relational encoding of
  the current document's Stage 1 output (``RbinW`` / ``RdocW`` / ``RvarW`` /
  ``RdocTSW``).
* :class:`~repro.core.processor.MMQJPJoinProcessor` — Algorithm 1 (and, with
  view materialization enabled, Algorithm 4): per-template conjunctive-query
  evaluation over the witness relations.
* :class:`~repro.core.processor.SequentialJoinProcessor` — the paper's
  baseline: the FOLLOWED BY of every query evaluated separately.
* :class:`~repro.core.engine.MMQJPEngine` / :class:`~repro.core.engine.SequentialEngine`
  — complete two-stage pipelines over XML documents.
"""

from repro.core.costs import CostBreakdown
from repro.core.state import JoinState
from repro.core.witnesses import WitnessRelations
from repro.core.results import Match
from repro.core.materialize import ViewCache, MaterializedViews, compute_materialized_views
from repro.core.processor import MMQJPJoinProcessor, SequentialJoinProcessor
from repro.core.relevance import RelevanceIndex
from repro.core.engine import (
    ENGINES,
    EngineStats,
    MMQJPEngine,
    SequentialEngine,
    make_engine,
    merge_engine_stats,
)

__all__ = [
    "CostBreakdown",
    "ENGINES",
    "EngineStats",
    "make_engine",
    "merge_engine_stats",
    "JoinState",
    "WitnessRelations",
    "Match",
    "ViewCache",
    "MaterializedViews",
    "compute_materialized_views",
    "MMQJPJoinProcessor",
    "SequentialJoinProcessor",
    "RelevanceIndex",
    "MMQJPEngine",
    "SequentialEngine",
]
