"""repro — Massively Multi-Query Join Processing for XML publish/subscribe.

A from-scratch reproduction of *"Massively Multi-Query Join Processing in
Publish/Subscribe Systems"* (Hong, Demers, Gehrke, Koch, Riedewald, White;
SIGMOD 2007).

The package is organised around the paper's two-stage architecture:

* Stage 1 — the **XPath Evaluator** (:mod:`repro.xpath`): shared evaluation
  of the tree-pattern components of all registered queries, producing
  relational *witnesses*.
* Stage 2 — the **Join Processor** (:mod:`repro.core`): queries are
  partitioned into *query templates* (:mod:`repro.templates`) and all
  queries of a template are evaluated at once by a single relational
  conjunctive query over the witness relations
  (:mod:`repro.relational`), optionally accelerated by the Section 5 view
  materialization.

User-facing entry points:

* :func:`repro.open_broker` + :class:`repro.RuntimeConfig` — the session
  API: one config object for every knob, one factory that routes to the
  unsharded or sharded runtime.
* :class:`repro.pubsub.Broker` / :class:`repro.runtime.ShardedBroker` — the
  broker implementations behind the façade (still constructible directly).
* Delivery sinks (:mod:`repro.pubsub.sinks`) — pluggable destinations for
  subscription results: callbacks, bounded collections, queues, batches.
* :class:`repro.core.MMQJPEngine` / :class:`repro.core.SequentialEngine` —
  the two engines compared throughout the paper's evaluation.
* :mod:`repro.workloads` — the synthetic benchmark workloads of Section 6
  and a simulated RSS feed stream.
* :mod:`repro.bench` — the experiment harness regenerating every figure and
  table of the evaluation section.
* :mod:`repro.metrics` — the observability layer behind
  ``RuntimeConfig(metrics=True)``: counters, latency histograms with
  p50/p95/p99 tails, per-stage timers and per-subscription delivery lag.
* :mod:`repro.stress` — the million-user stress harness
  (:func:`repro.stress.run_stress`) driving ramp/steady/burst/churn phases
  over the DBLP-style workload of :mod:`repro.workloads.dblp`.
"""

from repro.config import ENGINES, RuntimeConfig
from repro.core import MMQJPEngine, SequentialEngine, Match
from repro.metrics import MetricsRegistry
from repro.stress import StressConfig, run_stress
from repro.pubsub import (
    BatchingSink,
    Broker,
    CallbackSink,
    CollectingSink,
    DeliverySink,
    QueueSink,
    Subscription,
    SubscriptionResult,
)
from repro.runtime import ShardedBroker
from repro.session import open_broker
from repro.storage import MemoryStore, SQLiteStore, StateStore
from repro.storage.recovery import RecoveryError
from repro.xmlmodel import XmlDocument, element, parse_document, to_xml
from repro.xscl import parse_query, XsclQuery

__version__ = "1.4.0"

__all__ = [
    # session API
    "RuntimeConfig",
    "open_broker",
    "ENGINES",
    # brokers and subscriptions
    "Broker",
    "ShardedBroker",
    "Subscription",
    "SubscriptionResult",
    # delivery sinks
    "DeliverySink",
    "CallbackSink",
    "CollectingSink",
    "QueueSink",
    "BatchingSink",
    # durable storage
    "StateStore",
    "MemoryStore",
    "SQLiteStore",
    "RecoveryError",
    # observability and stress
    "MetricsRegistry",
    "StressConfig",
    "run_stress",
    # engines and matches
    "MMQJPEngine",
    "SequentialEngine",
    "Match",
    # documents and queries
    "XmlDocument",
    "element",
    "parse_document",
    "to_xml",
    "parse_query",
    "XsclQuery",
    "__version__",
]
