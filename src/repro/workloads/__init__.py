"""Workload generators for the paper's evaluation (Section 6).

* :mod:`~repro.workloads.zipf` — the Zipf sampler both query generators use.
* :mod:`~repro.workloads.synthetic` — the technical benchmark of Section 6.1:
  two-level and three-level document schemas, the two fixed documents with
  matching leaf values, and direct construction of the witness relations
  (bypassing the XPath Evaluator, exactly as the paper does).
* :mod:`~repro.workloads.querygen` — random XSCL query generation following
  Figure 17.
* :mod:`~repro.workloads.rss` — a simulated RSS/Atom feed stream standing in
  for the proprietary crawl used in Section 6.3.
* :mod:`~repro.workloads.dblp` — a DBLP-style bibliography stream (venues as
  streams, Zipf entity reuse) driving the million-user stress harness
  (:mod:`repro.stress`).
"""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.synthetic import (
    PlanScalingData,
    TechnicalBenchmarkData,
    build_document,
    build_plan_scaling_data,
    build_technical_benchmark_data,
    build_topic_documents,
    leaf_variable,
    group_variable,
    root_variable,
    topic_schemas,
)
from repro.workloads.querygen import (
    QueryWorkloadConfig,
    generate_queries,
    generate_topic_queries,
)
from repro.workloads.rss import RssStreamConfig, generate_rss_stream, generate_rss_queries
from repro.workloads.dblp import (
    DblpWorkloadConfig,
    generate_dblp_stream,
    generate_dblp_subscriptions,
)

__all__ = [
    "ZipfSampler",
    "PlanScalingData",
    "TechnicalBenchmarkData",
    "build_document",
    "build_plan_scaling_data",
    "build_technical_benchmark_data",
    "build_topic_documents",
    "leaf_variable",
    "group_variable",
    "root_variable",
    "topic_schemas",
    "QueryWorkloadConfig",
    "generate_queries",
    "generate_topic_queries",
    "RssStreamConfig",
    "generate_rss_stream",
    "generate_rss_queries",
    "DblpWorkloadConfig",
    "generate_dblp_stream",
    "generate_dblp_subscriptions",
]
