"""Random XSCL query generation (paper Figure 17).

For each query:

1. draw ``k``, the number of value joins, from a Zipf distribution over
   ``1 .. max_value_joins``;
2. for the left block, bind the root variable plus ``k`` variables on ``k``
   distinct leaves chosen uniformly at random (for three-level schemas the
   intermediate nodes on the chosen paths are bound too, adding structural
   joins);
3. repeat independently for the right block;
4. emit the ``k`` value joins ``v_i = v'_i`` pairing the i-th chosen leaf of
   each side, under a FOLLOWED BY with the configured window.

Variable names follow the canonical convention of
:mod:`repro.workloads.synthetic` (one name per schema position), so witness
relations built there line up with the generated queries, and — as the paper
observes — the number of distinct templates is bounded by the schema, not by
the number of generated queries.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.workloads.synthetic import group_variable, leaf_variable, root_variable
from repro.workloads.zipf import ZipfSampler
from repro.xmlmodel.schema import DocumentSchema
from repro.xpath.ast import parse_path
from repro.xpath.pattern import PatternNode, VariableTreePattern
from repro.xscl.ast import (
    INFINITE_WINDOW,
    JoinOperator,
    JoinSpec,
    QueryBlock,
    ValueJoinPredicate,
    XsclQuery,
)


@dataclass
class QueryWorkloadConfig:
    """Parameters of the random query workload (Table 5 defaults).

    Attributes
    ----------
    schema:
        The document schema queries are generated against.
    num_queries:
        How many queries to generate (paper default: 1000).
    zipf_theta:
        Zipf parameter for drawing the number of value joins (default 0.8).
    max_value_joins:
        Upper bound on value joins per query.  Defaults to the number of
        schema leaves for two-level schemas and to 4 (the paper's ``K``) for
        three-level schemas.
    window:
        Window length assigned to every generated query.
    stream:
        Input stream name.
    seed:
        RNG seed for reproducibility.
    """

    schema: DocumentSchema
    num_queries: int = 1000
    zipf_theta: float = 0.8
    max_value_joins: Optional[int] = None
    window: float = INFINITE_WINDOW
    stream: str = "S"
    seed: int = 7

    def resolved_max_value_joins(self) -> int:
        """The effective upper bound on value joins per query."""
        if self.max_value_joins is not None:
            return min(self.max_value_joins, self.schema.num_leaves)
        if self.schema.levels == 2:
            return self.schema.num_leaves
        return min(4, self.schema.num_leaves)


def _build_block(schema: DocumentSchema, leaves: list[int], stream: str) -> QueryBlock:
    """Build one query block binding the root, the chosen leaves and (for
    three-level schemas) the intermediate nodes on the chosen paths."""
    root = PatternNode(root_variable(schema), parse_path(f"//{schema.root_tag}"))
    if schema.levels == 2:
        for leaf in leaves:
            root.add_child(
                PatternNode(leaf_variable(schema, leaf), parse_path(f".//{schema.leaf_tags[leaf]}"))
            )
    else:
        by_group: dict[int, list[int]] = {}
        for leaf in leaves:
            by_group.setdefault(schema.group_of_leaf(leaf), []).append(leaf)
        for g in sorted(by_group):
            group_node = root.add_child(
                PatternNode(group_variable(schema, g), parse_path(f".//{schema.group_tags[g]}"))
            )
            for leaf in sorted(by_group[g]):
                group_node.add_child(
                    PatternNode(
                        leaf_variable(schema, leaf), parse_path(f".//{schema.leaf_tags[leaf]}")
                    )
                )
    return QueryBlock(pattern=VariableTreePattern(root=root, stream=stream))


def generate_query(
    schema: DocumentSchema,
    num_value_joins: int,
    rng: random.Random,
    window: float = INFINITE_WINDOW,
    stream: str = "S",
) -> XsclQuery:
    """Generate a single random query with exactly ``num_value_joins`` value joins."""
    if not 1 <= num_value_joins <= schema.num_leaves:
        raise ValueError("num_value_joins must be between 1 and the number of schema leaves")
    left_leaves = rng.sample(range(schema.num_leaves), num_value_joins)
    right_leaves = rng.sample(range(schema.num_leaves), num_value_joins)
    left_block = _build_block(schema, left_leaves, stream)
    right_block = _build_block(schema, right_leaves, stream)
    predicates = tuple(
        ValueJoinPredicate(leaf_variable(schema, l), leaf_variable(schema, r))
        for l, r in zip(left_leaves, right_leaves)
    )
    return XsclQuery(
        left=left_block,
        right=right_block,
        join=JoinSpec(operator=JoinOperator.FOLLOWED_BY, predicates=predicates, window=window),
    )


def iter_queries(config: QueryWorkloadConfig) -> Iterator[XsclQuery]:
    """Yield ``config.num_queries`` random queries."""
    rng = random.Random(config.seed)
    sampler = ZipfSampler(config.resolved_max_value_joins(), config.zipf_theta, rng)
    for _ in range(config.num_queries):
        k = sampler.sample()
        yield generate_query(
            config.schema, k, rng, window=config.window, stream=config.stream
        )


def generate_queries(config: QueryWorkloadConfig) -> list[XsclQuery]:
    """Generate the full random query workload as a list."""
    return list(iter_queries(config))


def generate_topic_queries(
    schemas: list[DocumentSchema],
    num_queries: int,
    window: float = INFINITE_WINDOW,
    stream: str = "S",
    seed: int = 7,
) -> list[XsclQuery]:
    """Generate queries spread round-robin over topic-sharded schemas.

    A query on topic ``t`` uses all of that schema's leaves as value joins,
    so — together with the disjoint tag namespaces of
    :func:`repro.workloads.synthetic.topic_schemas` — every topic owns its
    query templates outright, and a document of one topic is relevant to
    roughly ``1 / len(schemas)`` of the registered templates.  This is the
    workload of the plan-scaling benchmark.
    """
    rng = random.Random(seed)
    return [
        generate_query(
            schemas[i % len(schemas)],
            schemas[i % len(schemas)].num_leaves,
            rng,
            window=window,
            stream=stream,
        )
        for i in range(num_queries)
    ]
