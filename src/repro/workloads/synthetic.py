"""The technical benchmark of Section 6.1: documents and witness relations.

The paper's technical benchmark joins two fixed documents ``d1`` and ``d2``
that conform to the same schema and whose leaf nodes in corresponding
positions carry identical string values (while all leaves within one
document carry distinct values).  Because the benchmark measures the Join
Processor only, the witness relations are constructed directly instead of
running the XPath Evaluator; this module does the same, while also being
able to build the actual XML documents for end-to-end tests.

Variable naming convention (shared with the query generator so that witness
rows and query variables line up):

* the root variable is ``v_<root tag>``,
* intermediate (group) variables are ``v_<group tag>``,
* leaf variables are ``v_<leaf tag>``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.state import JoinState
from repro.core.witnesses import WitnessRelations
from repro.xmlmodel.builder import element
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.node import XmlNode
from repro.xmlmodel.schema import DocumentSchema


# --------------------------------------------------------------------------- #
# variable naming
# --------------------------------------------------------------------------- #
def root_variable(schema: DocumentSchema) -> str:
    """Canonical variable name bound to the schema's root element."""
    return f"v_{schema.root_tag}"


def group_variable(schema: DocumentSchema, group_index: int) -> str:
    """Canonical variable name bound to an intermediate (group) element."""
    return f"v_{schema.group_tags[group_index]}"


def leaf_variable(schema: DocumentSchema, leaf_index: int) -> str:
    """Canonical variable name bound to a leaf element."""
    return f"v_{schema.leaf_tags[leaf_index]}"


# --------------------------------------------------------------------------- #
# documents
# --------------------------------------------------------------------------- #
def leaf_value(leaf_index: int) -> str:
    """The shared string value of leaf ``leaf_index`` in both benchmark documents."""
    return f"value_{leaf_index}"


def build_document(
    schema: DocumentSchema,
    docid: str,
    timestamp: float,
    leaf_values: list[str] | None = None,
    internal_marker: str = "",
) -> XmlDocument:
    """Build a document conforming to ``schema``.

    ``leaf_values`` supplies the text of each leaf (defaults to the shared
    benchmark values); ``internal_marker`` is appended to internal nodes'
    text so that internal nodes of different documents never join.
    """
    values = leaf_values if leaf_values is not None else [
        leaf_value(i) for i in range(schema.num_leaves)
    ]
    if len(values) != schema.num_leaves:
        raise ValueError("leaf_values must have one entry per schema leaf")

    def leaf_node(i: int) -> XmlNode:
        return element(schema.leaf_tags[i], text=values[i])

    if schema.levels == 2:
        root = element(schema.root_tag, *[leaf_node(i) for i in range(schema.num_leaves)])
    else:
        groups = []
        for g, members in enumerate(schema.groups):
            groups.append(element(schema.group_tags[g], *[leaf_node(i) for i in members]))
        root = element(schema.root_tag, *groups)
    if internal_marker:
        root.text = internal_marker
    return XmlDocument(root, docid=docid, timestamp=timestamp)


def node_ids(schema: DocumentSchema) -> tuple[int, list[int], list[int]]:
    """Pre-order node ids of (root, group nodes, leaf nodes) for ``schema``."""
    if schema.levels == 2:
        return 0, [], [i + 1 for i in range(schema.num_leaves)]
    group_ids: list[int] = []
    leaf_ids: list[int] = [0] * schema.num_leaves
    next_id = 1
    for g, members in enumerate(schema.groups):
        group_ids.append(next_id)
        next_id += 1
        for leaf_index in members:
            leaf_ids[leaf_index] = next_id
            next_id += 1
    return 0, group_ids, leaf_ids


# --------------------------------------------------------------------------- #
# witness relations (the paper's direct construction)
# --------------------------------------------------------------------------- #
@dataclass
class TechnicalBenchmarkData:
    """Witness relations for the two fixed benchmark documents.

    ``d1`` (the *previous* document) is encoded as plain row lists ready to
    be loaded into a :class:`~repro.core.state.JoinState`; ``d2`` (the
    *current* document) is encoded as a
    :class:`~repro.core.witnesses.WitnessRelations` instance.
    """

    schema: DocumentSchema
    d1_docid: str = "d1"
    d2_docid: str = "d2"
    d1_timestamp: float = 1.0
    d2_timestamp: float = 2.0
    rbin_rows: list[tuple] = field(default_factory=list)
    rdoc_rows: list[tuple] = field(default_factory=list)
    rvar_rows: list[tuple] = field(default_factory=list)
    witness: WitnessRelations | None = None

    def load_state(self, state: JoinState) -> None:
        """Load ``d1``'s witnesses into a join state."""
        state.insert_document_rows(
            self.d1_docid,
            self.d1_timestamp,
            rbin_rows=self.rbin_rows,
            rdoc_rows=self.rdoc_rows,
            rvar_rows=self.rvar_rows,
        )

    def fresh_state(self) -> JoinState:
        """A new join state pre-loaded with ``d1``."""
        state = JoinState()
        self.load_state(state)
        return state


def _edge_rows(schema: DocumentSchema) -> list[tuple[str, str, int, int]]:
    """All (ancestor var, descendant var, ancestor node, descendant node) rows.

    Every ancestor/descendant variable pair of the schema is included, so the
    rows are a superset of what the XPath Evaluator would return for any set
    of registered query blocks (exactly the property the paper relies on).
    """
    root_id, group_ids, leaf_ids = node_ids(schema)
    rows: list[tuple[str, str, int, int]] = []
    root_var = root_variable(schema)
    for i in range(schema.num_leaves):
        rows.append((root_var, leaf_variable(schema, i), root_id, leaf_ids[i]))
    for g in range(len(schema.groups)):
        rows.append((root_var, group_variable(schema, g), root_id, group_ids[g]))
        for i in schema.groups[g]:
            rows.append((group_variable(schema, g), leaf_variable(schema, i), group_ids[g], leaf_ids[i]))
    return rows


def _value_rows(schema: DocumentSchema, internal_prefix: str) -> list[tuple[int, str]]:
    """(node, strVal) rows: shared values for leaves, unique values for internals."""
    root_id, group_ids, leaf_ids = node_ids(schema)
    rows = [(root_id, f"{internal_prefix}-root")]
    for g, gid in enumerate(group_ids):
        rows.append((gid, f"{internal_prefix}-group{g}"))
    for i in range(schema.num_leaves):
        rows.append((leaf_ids[i], leaf_value(i)))
    return rows


def _var_rows(schema: DocumentSchema) -> list[tuple[str, int]]:
    """(var, node) rows for every bound variable."""
    root_id, group_ids, leaf_ids = node_ids(schema)
    rows = [(root_variable(schema), root_id)]
    for g, gid in enumerate(group_ids):
        rows.append((group_variable(schema, g), gid))
    for i in range(schema.num_leaves):
        rows.append((leaf_variable(schema, i), leaf_ids[i]))
    return rows


@dataclass
class StateScalingData:
    """Workload of the state-scaling benchmark: a large retained state plus probes.

    ``state_docs`` holds one entry per previously processed document —
    ``(docid, timestamp, rbin_rows, rdoc_rows, rvar_rows)``, rows without the
    ``docid`` column — ready for
    :meth:`~repro.core.state.JoinState.insert_document_rows`.  ``probes`` are
    the current documents whose per-document join cost the benchmark times.
    Leaf values are drawn from a shared pool so that a controlled fraction of
    the retained state joins with every probe.
    """

    schema: DocumentSchema
    state_docs: list[tuple[str, float, list[tuple], list[tuple], list[tuple]]]
    probes: list[WitnessRelations]

    def load_state(self, state: JoinState) -> None:
        """Load every retained document into a join state."""
        for docid, timestamp, rbin_rows, rdoc_rows, rvar_rows in self.state_docs:
            state.insert_document_rows(
                docid, timestamp, rbin_rows=rbin_rows, rdoc_rows=rdoc_rows, rvar_rows=rvar_rows
            )


def build_state_scaling_data(
    schema: DocumentSchema,
    num_state_docs: int,
    num_probe_docs: int = 5,
    value_pool: int = 400,
    seed: int = 13,
) -> StateScalingData:
    """Construct the retained-state workload for the state-scaling benchmark.

    Every document carries the schema's full witness structure (like the
    technical benchmark), but leaf values are drawn randomly from a pool of
    ``value_pool`` strings, so value joins hit a bounded number of witnesses
    regardless of how many documents the state retains — exactly the regime
    in which indexed join state pays off.
    """
    import random

    rng = random.Random(seed)
    root_id, group_ids, leaf_ids = node_ids(schema)
    edges = _edge_rows(schema)
    var_rows = _var_rows(schema)

    def value_rows(tag: str) -> list[tuple[int, str]]:
        rows = [(root_id, f"{tag}-root")]
        for g, gid in enumerate(group_ids):
            rows.append((gid, f"{tag}-group{g}"))
        for i in range(schema.num_leaves):
            rows.append((leaf_ids[i], f"val{rng.randrange(value_pool)}"))
        return rows

    state_docs = [
        (f"s{i}", float(i + 1), edges, value_rows(f"s{i}"), var_rows)
        for i in range(num_state_docs)
    ]
    probes = [
        WitnessRelations.from_rows(
            docid=f"p{j}",
            timestamp=float(num_state_docs + j + 1),
            rbinw_rows=edges,
            rdocw_rows=value_rows(f"p{j}"),
            rvarw_rows=var_rows,
        )
        for j in range(num_probe_docs)
    ]
    return StateScalingData(schema=schema, state_docs=state_docs, probes=probes)


@dataclass
class PlanScalingData:
    """Workload of the plan-scaling benchmark: topic-sharded state plus probes.

    The registry is split into *topics* with disjoint variable namespaces
    and distinct template shapes (topic ``t`` uses ``t + 1`` value joins
    over its own tag set), so each template belongs to exactly one topic.
    Every retained document and every probe carries the witnesses of one
    topic only — a probe is *relevant* to roughly ``1 / num_topics`` of the
    templates, which is the regime relevance-pruned dispatch targets.

    ``probe_topics[j]`` records which topic probe ``j`` belongs to.
    """

    schemas: list[DocumentSchema]
    state_docs: list[tuple[str, float, list[tuple], list[tuple], list[tuple]]]
    probes: list[WitnessRelations]
    probe_topics: list[int]

    @property
    def num_topics(self) -> int:
        """Number of topics (≈ 1 / relevance fraction)."""
        return len(self.schemas)

    def load_state(self, state: JoinState) -> None:
        """Load every retained document into a join state."""
        for docid, timestamp, rbin_rows, rdoc_rows, rvar_rows in self.state_docs:
            state.insert_document_rows(
                docid, timestamp, rbin_rows=rbin_rows, rdoc_rows=rdoc_rows, rvar_rows=rvar_rows
            )


def topic_schemas(num_topics: int) -> list[DocumentSchema]:
    """Two-level schemas with disjoint tag namespaces, one per topic.

    Topic ``t`` has ``t + 1`` leaves, so that queries with ``t + 1`` value
    joins (one per leaf) have a reduced join graph shape no other topic
    produces — each topic owns its templates outright.
    """
    if num_topics < 1:
        raise ValueError("need at least one topic")
    return [
        DocumentSchema(
            root_tag=f"topic{t}_root",
            leaf_tags=tuple(f"topic{t}_leaf{i}" for i in range(t + 1)),
        )
        for t in range(num_topics)
    ]


def build_plan_scaling_data(
    schemas: list[DocumentSchema],
    num_state_docs: int,
    num_probe_docs: int = 5,
    value_pool: int = 20,
    seed: int = 13,
) -> PlanScalingData:
    """Construct the topic-sharded workload for the plan-scaling benchmark.

    Documents are assigned to topics round-robin.  All leaves of one
    document share a single value drawn from a per-topic pool of
    ``value_pool`` strings, so a probe satisfies *every* value join of a
    same-topic query against ≈ ``1 / value_pool`` of its topic's retained
    documents (and never joins across topics) — matches fire at a
    controlled rate regardless of how many value joins a topic's queries
    carry.
    """
    import random

    rng = random.Random(seed)
    num_topics = len(schemas)
    per_topic = [
        (_edge_rows(schema), _var_rows(schema), node_ids(schema))
        for schema in schemas
    ]

    def value_rows(topic: int, tag: str) -> list[tuple[int, str]]:
        schema = schemas[topic]
        root_id, group_ids, leaf_ids = per_topic[topic][2]
        rows = [(root_id, f"{tag}-root")]
        for g, gid in enumerate(group_ids):
            rows.append((gid, f"{tag}-group{g}"))
        shared = f"t{topic}val{rng.randrange(value_pool)}"
        for i in range(schema.num_leaves):
            rows.append((leaf_ids[i], shared))
        return rows

    state_docs = []
    for i in range(num_state_docs):
        topic = i % num_topics
        edges, var_rows, _ = per_topic[topic]
        state_docs.append(
            (f"s{i}", float(i + 1), edges, value_rows(topic, f"s{i}"), var_rows)
        )

    probes = []
    probe_topics = []
    for j in range(num_probe_docs):
        topic = j % num_topics
        edges, var_rows, _ = per_topic[topic]
        probe_topics.append(topic)
        probes.append(
            WitnessRelations.from_rows(
                docid=f"p{j}",
                timestamp=float(num_state_docs + j + 1),
                rbinw_rows=edges,
                rdocw_rows=value_rows(topic, f"p{j}"),
                rvarw_rows=var_rows,
            )
        )
    return PlanScalingData(
        schemas=list(schemas),
        state_docs=state_docs,
        probes=probes,
        probe_topics=probe_topics,
    )


def build_topic_documents(
    schemas: list[DocumentSchema],
    num_documents: int,
    value_pool: int = 8,
    seed: int = 13,
) -> list[XmlDocument]:
    """An XML document stream over topic-sharded schemas (round-robin).

    The end-to-end twin of :func:`build_plan_scaling_data`'s probes: actual
    parseable documents, published through a broker instead of loaded as
    witness rows.  All leaves of one document share a single value from a
    per-topic pool of ``value_pool`` strings, so any two same-topic
    documents join with probability ≈ ``1 / value_pool`` per side — and
    never across topics (disjoint tag namespaces).  Because topics alternate
    in the stream, every document also plays *both* query-block roles: it
    probes the retained same-topic documents and becomes retained state for
    the following ones.  Docids and timestamps are explicit, so repeated
    runs produce identical match keys.
    """
    import random

    rng = random.Random(seed)
    num_topics = len(schemas)
    documents = []
    for i in range(num_documents):
        topic = i % num_topics
        schema = schemas[topic]
        shared = f"t{topic}val{rng.randrange(value_pool)}"
        documents.append(
            build_document(
                schema,
                docid=f"td{i}",
                timestamp=float(i + 1),
                leaf_values=[shared] * schema.num_leaves,
                internal_marker=f"td{i}",
            )
        )
    return documents


@dataclass
class DeltaScalingData(StateScalingData):
    """Workload of the delta-scaling benchmark: growing state, fixed delta.

    Same layout as :class:`StateScalingData`, but the retained state mixes a
    *fixed* number of **alive** documents (canonical variable names, so they
    can satisfy every join of a registered query) with a growing tail of
    **dead** documents: their ``Rdoc`` rows carry leaf values from the same
    shared pool — so they match every value join of a probe — while their
    ``Rbin``/``Rvar`` rows use decoy variable names no registered query
    binds, so they can never survive the structural/template joins.  The
    dead tail is exactly the state a full-state join wades through and a
    delta-driven (semi-join reduced) join never touches.
    """

    num_alive_docs: int = 0
    value_pool: int = 0


def build_delta_scaling_data(
    schema: DocumentSchema,
    num_state_docs: int,
    num_alive_docs: int = 24,
    num_probe_docs: int = 5,
    value_pool: int = 10,
    seed: int = 13,
) -> DeltaScalingData:
    """Construct the growing-state / fixed-delta workload.

    ``num_alive_docs`` is held constant while ``num_state_docs`` grows, so
    the delta-connected state (and the probe documents themselves) stay the
    same size at every state scale.  All leaves of one document share a
    single value drawn from a pool of ``value_pool`` strings; dead
    documents share one low-cardinality decoy variable pair, so their rows
    are indistinguishable from alive ones on the value-join column and only
    the structural (variable-name) joins expose them.
    """
    if num_alive_docs > num_state_docs:
        raise ValueError("num_alive_docs cannot exceed num_state_docs")
    import random

    # Separate value streams: the alive documents and the probes draw from
    # their own generator, so the match sets (which only alive documents can
    # contribute to) are identical at every state scale — the dead tail is
    # pure extra state, not a different workload.
    alive_rng = random.Random(seed)
    dead_rng = random.Random(seed + 1)
    root_id, group_ids, leaf_ids = node_ids(schema)
    edges = _edge_rows(schema)
    var_rows = _var_rows(schema)

    # Decoy witnesses: same node layout, same row counts, variable names no
    # query uses — and deliberately few distinct decoy names, so a join
    # order that postpones the structural atoms cannot tell dead from alive
    # until it has already materialized their value-join rows.
    decoy_edges = [
        ("decoy_root", "decoy_leaf", root_edge[2], root_edge[3])
        for root_edge in edges
    ]
    decoy_vars = [("decoy_root", root_id)] + [
        ("decoy_leaf", leaf_ids[i]) for i in range(schema.num_leaves)
    ]

    def value_rows(tag: str, rng) -> list[tuple[int, str]]:
        rows = [(root_id, f"{tag}-root")]
        for g, gid in enumerate(group_ids):
            rows.append((gid, f"{tag}-group{g}"))
        shared = f"val{rng.randrange(value_pool)}"
        for i in range(schema.num_leaves):
            rows.append((leaf_ids[i], shared))
        return rows

    state_docs = []
    for i in range(num_state_docs):
        alive = i < num_alive_docs
        state_docs.append(
            (
                f"s{i}",
                float(i + 1),
                edges if alive else decoy_edges,
                value_rows(f"s{i}", alive_rng if alive else dead_rng),
                var_rows if alive else decoy_vars,
            )
        )

    probes = [
        WitnessRelations.from_rows(
            docid=f"p{j}",
            timestamp=float(num_state_docs + j + 1),
            rbinw_rows=edges,
            rdocw_rows=value_rows(f"p{j}", alive_rng),
            rvarw_rows=var_rows,
        )
        for j in range(num_probe_docs)
    ]
    return DeltaScalingData(
        schema=schema,
        state_docs=state_docs,
        probes=probes,
        num_alive_docs=num_alive_docs,
        value_pool=value_pool,
    )


def build_technical_benchmark_data(schema: DocumentSchema) -> TechnicalBenchmarkData:
    """Construct the Section 6.1 witness relations for documents ``d1`` and ``d2``."""
    data = TechnicalBenchmarkData(schema=schema)
    data.rbin_rows = list(_edge_rows(schema))
    data.rdoc_rows = list(_value_rows(schema, "d1"))
    data.rvar_rows = list(_var_rows(schema))

    witness = WitnessRelations.from_rows(
        docid=data.d2_docid,
        timestamp=data.d2_timestamp,
        rbinw_rows=_edge_rows(schema),
        rdocw_rows=_value_rows(schema, "d2"),
        rvarw_rows=_var_rows(schema),
    )
    data.witness = witness
    return data
