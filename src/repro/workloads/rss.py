"""A simulated RSS/Atom feed stream (substituting Section 6.3's crawl).

The paper's RSS experiment uses a proprietary crawl of 418 channels with
225K feed items collected in 2006; each item has five leaf elements —
``item_url``, ``channel_url``, ``title``, ``timestamp`` and
``description``.  The crawl is not available, so this module generates a
synthetic stream with the same schema and the statistical properties the
join workload depends on:

* many items per channel (``channel_url`` values repeat heavily),
* titles and descriptions drawn from bounded pools (cross-item value
  collisions occur at a controllable rate),
* unique ``item_url`` values,
* monotonically increasing timestamps.

Queries over the stream are generated Figure 17-style over the five-leaf
item schema, so at most five query templates arise — matching the paper's
observation for this workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.xmlmodel.builder import element
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.schema import DocumentSchema, rss_item_schema
from repro.xscl.ast import INFINITE_WINDOW, XsclQuery


@dataclass
class RssStreamConfig:
    """Parameters of the simulated feed stream.

    The defaults are scaled down from the paper's 418 channels / 225K items
    to sizes a pure-Python engine processes in benchmark-friendly time; the
    ratios (items per channel, title collision rate) are preserved.
    """

    num_items: int = 1000
    num_channels: int = 42
    title_pool_size: int = 150
    description_pool_size: int = 300
    start_timestamp: float = 1.0
    timestamp_step: float = 1.0
    seed: int = 11
    stream: str = "S"

    def schema(self) -> DocumentSchema:
        """The five-leaf RSS item schema."""
        return rss_item_schema()


def _title(index: int) -> str:
    return f"Title {index}: notes on stream processing"


def _description(index: int) -> str:
    return f"Description text {index} discussing feeds, joins and subscriptions."


def generate_rss_item(
    config: RssStreamConfig, sequence: int, rng: random.Random
) -> XmlDocument:
    """Generate a single feed item document."""
    channel = rng.randrange(config.num_channels)
    title = _title(rng.randrange(config.title_pool_size))
    description = _description(rng.randrange(config.description_pool_size))
    timestamp = config.start_timestamp + sequence * config.timestamp_step
    root = element(
        "item",
        element("item_url", text=f"http://feeds.example.org/channel{channel}/item{sequence}"),
        element("channel_url", text=f"http://feeds.example.org/channel{channel}"),
        element("title", text=title),
        element("timestamp", text=str(timestamp)),
        element("description", text=description),
    )
    return XmlDocument(
        root, docid=f"item{sequence}", timestamp=timestamp, stream=config.stream
    )


def generate_rss_stream(config: Optional[RssStreamConfig] = None) -> Iterator[XmlDocument]:
    """Yield the simulated feed stream in arrival order."""
    config = config if config is not None else RssStreamConfig()
    rng = random.Random(config.seed)
    for sequence in range(config.num_items):
        yield generate_rss_item(config, sequence, rng)


def generate_rss_queries(
    num_queries: int,
    zipf_theta: float = 0.8,
    window: float = INFINITE_WINDOW,
    seed: int = 13,
    stream: str = "S",
) -> list[XsclQuery]:
    """Generate Figure 17-style queries over the RSS item schema.

    The paper assigns an infinite window to every query in this experiment
    (no feed item is ever discarded from the join state).
    """
    config = QueryWorkloadConfig(
        schema=rss_item_schema(),
        num_queries=num_queries,
        zipf_theta=zipf_theta,
        window=window,
        seed=seed,
        stream=stream,
    )
    return generate_queries(config)
