"""A Zipf-distributed integer sampler.

Section 6.1 draws the number of value joins per query, ``k``, from a Zipf
distribution over ``1..N``; the experiments sweep the Zipf parameter from
0.0 (uniform) to 1.6 (highly skewed towards small ``k``).
"""

from __future__ import annotations

import bisect
import random
from typing import Optional


class ZipfSampler:
    """Sample integers from ``1..n`` with probability proportional to ``1 / k**theta``.

    ``theta = 0`` gives the uniform distribution; larger values skew the
    distribution towards 1.
    """

    def __init__(self, n: int, theta: float, rng: Optional[random.Random] = None):
        if n < 1:
            raise ValueError("n must be at least 1")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = rng if rng is not None else random.Random()
        weights = [1.0 / (k ** theta) for k in range(1, n + 1)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for w in weights:
            acc += w / total
            cumulative.append(acc)
        cumulative[-1] = 1.0
        self._cumulative = cumulative

    def sample(self) -> int:
        """Draw one value from ``1..n``."""
        u = self._rng.random()
        return bisect.bisect_left(self._cumulative, u) + 1

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` values."""
        return [self.sample() for _ in range(count)]

    def probability(self, k: int) -> float:
        """The probability of drawing ``k``."""
        if not 1 <= k <= self.n:
            return 0.0
        previous = self._cumulative[k - 2] if k >= 2 else 0.0
        return self._cumulative[k - 1] - previous
