"""A DBLP-style publication stream for the million-user stress harness.

DBLP is the classic bibliography corpus: articles carrying authors, a
title and a venue.  This module generates a synthetic stand-in with the
statistical properties the stress workload depends on:

* **venues as streams** — each article is published on its venue's stream
  (``venue0``, ``venue1``, ...), and subscriptions name venue streams in
  their query blocks, so the broker's relevance index and fan-out router
  prune by venue exactly as a real deployment would;
* **Zipf entity reuse** — venues and authors are drawn from Zipf
  distributions (a few mega-venues and prolific authors dominate, with a
  long tail), so join-value collision rates are realistic;
* **bounded title pool** — titles repeat at a controllable rate, giving
  the title-join query shapes real matches.

Subscriptions come in a small number of *shapes* (structural classes) —
coauthor alerts, cross-venue title echoes, author+title trackers — so the
template registry collapses the whole population onto a handful of
templates no matter how many subscriptions are live, which is precisely
the paper's scaling claim the stress harness exercises.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.workloads.zipf import ZipfSampler
from repro.xmlmodel.builder import element
from repro.xmlmodel.document import XmlDocument


@dataclass
class DblpWorkloadConfig:
    """Parameters of the synthetic DBLP stream and subscription population.

    The defaults are sized for the stress harness: enough venues that
    per-venue routing matters, enough authors that author joins are
    selective, and Zipf skews (``theta``) matching the heavy-tailed reuse
    a real bibliography shows.
    """

    num_venues: int = 50
    num_authors: int = 5000
    title_pool_size: int = 2000
    max_authors_per_article: int = 4
    #: Number of ``<cite>`` reference elements per article (the real DBLP
    #: corpus carries citation lists; they make documents element-dense
    #: without adding join values, which is what parse-bound ingest
    #: benchmarks need).  The default keeps articles citation-free.
    citations_per_article: int = 0
    venue_theta: float = 0.7
    author_theta: float = 0.8
    window: float = 200.0
    start_timestamp: float = 1.0
    timestamp_step: float = 1.0
    seed: int = 17

    def venue_stream(self, venue: int) -> str:
        """The stream name articles of one venue are published on."""
        return f"venue{venue % self.num_venues}"


def _title(index: int) -> str:
    return f"Title {index}: advances in stream joins"


def _author(index: int) -> str:
    return f"Author {index}"


def generate_article(
    config: DblpWorkloadConfig,
    sequence: int,
    rng: random.Random,
    venue_sampler: ZipfSampler,
    author_sampler: ZipfSampler,
) -> XmlDocument:
    """Generate one article document on its venue's stream."""
    venue = venue_sampler.sample() - 1
    num_authors = rng.randint(1, config.max_authors_per_article)
    authors = {author_sampler.sample() - 1 for _ in range(num_authors)}
    timestamp = config.start_timestamp + sequence * config.timestamp_step
    extra = []
    if config.citations_per_article:
        extra.append(
            element(
                "citations",
                *[
                    element("cite", text=f"dblp/article{rng.randrange(10**6)}")
                    for _ in range(config.citations_per_article)
                ],
            )
        )
    root = element(
        "article",
        element("key", text=f"dblp/article{sequence}"),
        element(
            "authors",
            *[element("author", text=_author(a)) for a in sorted(authors)],
        ),
        element("title", text=_title(rng.randrange(config.title_pool_size))),
        element("venue", text=config.venue_stream(venue)),
        element("year", text=str(2000 + sequence % 26)),
        *extra,
    )
    return XmlDocument(
        root,
        docid=f"article{sequence}",
        timestamp=timestamp,
        stream=config.venue_stream(venue),
    )


def generate_dblp_stream(
    config: Optional[DblpWorkloadConfig] = None,
    num_articles: int = 1000,
    seed: Optional[int] = None,
) -> Iterator[XmlDocument]:
    """Yield the article stream in arrival order (Zipf venues and authors)."""
    config = config if config is not None else DblpWorkloadConfig()
    rng = random.Random(seed if seed is not None else config.seed)
    venue_sampler = ZipfSampler(config.num_venues, config.venue_theta, rng)
    author_sampler = ZipfSampler(config.num_authors, config.author_theta, rng)
    for sequence in range(num_articles):
        yield generate_article(config, sequence, rng, venue_sampler, author_sampler)


# --------------------------------------------------------------------------- #
# subscription shapes
# --------------------------------------------------------------------------- #
def _coauthor_alert(venue: str, window: float) -> str:
    """Same author publishes twice in one venue within the window."""
    return (
        f"{venue}//article->x1[.//author->x2] "
        f"FOLLOWED BY{{x2=x4, {window}}} "
        f"{venue}//article->x3[.//author->x4]"
    )


def _title_echo(venue_a: str, venue_b: str, window: float) -> str:
    """The same title appears in venue A and then venue B."""
    return (
        f"{venue_a}//article->x1[.//title->x2] "
        f"FOLLOWED BY{{x2=x4, {window}}} "
        f"{venue_b}//article->x3[.//title->x4]"
    )


def _author_title_tracker(venue: str, window: float) -> str:
    """Same author *and* same title recur in one venue within the window."""
    return (
        f"{venue}//article->x1[.//author->x2][.//title->x3] "
        f"FOLLOWED BY{{x2=x5 AND x3=x6, {window}}} "
        f"{venue}//article->x4[.//author->x5][.//title->x6]"
    )


#: The subscription shapes, cycled through by :func:`generate_dblp_subscription`.
NUM_SHAPES = 3


def generate_dblp_subscription(
    config: DblpWorkloadConfig,
    index: int,
    rng: random.Random,
    venue_sampler: ZipfSampler,
) -> str:
    """Generate one subscription query string (shape cycles, venues Zipf).

    Returns query *text*: the stress harness registers hundreds of
    thousands of these, and the broker parses them on subscribe exactly as
    real subscribers would submit them.
    """
    shape = index % NUM_SHAPES
    venue = config.venue_stream(venue_sampler.sample() - 1)
    if shape == 0:
        return _coauthor_alert(venue, config.window)
    if shape == 1:
        other = config.venue_stream(venue_sampler.sample() - 1)
        return _title_echo(venue, other, config.window)
    return _author_title_tracker(venue, config.window)


def generate_dblp_subscriptions(
    num_subscriptions: int,
    config: Optional[DblpWorkloadConfig] = None,
    seed: Optional[int] = None,
) -> Iterator[str]:
    """Yield ``num_subscriptions`` subscription query strings."""
    config = config if config is not None else DblpWorkloadConfig()
    rng = random.Random(seed if seed is not None else config.seed + 1)
    venue_sampler = ZipfSampler(config.num_venues, config.venue_theta, rng)
    for index in range(num_subscriptions):
        yield generate_dblp_subscription(config, index, rng, venue_sampler)
