"""Named event streams and the stream registry.

Publishers publish into a named stream (``"S"`` by default — the paper's
single-stream exposition).  A :class:`Stream` keeps light statistics and an
optional bounded history of recent documents; the broker uses the
:class:`StreamRegistry` to route incoming documents and to validate that
subscriptions reference known streams (unknown streams are created lazily,
as new publishers may appear at any time).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Iterable, Optional

from repro.xmlmodel.document import XmlDocument


@dataclass
class Stream:
    """One named event stream."""

    name: str
    history_size: int = 0
    num_documents: int = 0
    last_timestamp: Optional[float] = None
    _history: Deque[XmlDocument] = field(default_factory=deque, repr=False)

    def record(self, document: XmlDocument) -> None:
        """Record one published document (updates stats and bounded history)."""
        self.num_documents += 1
        self.last_timestamp = document.timestamp
        if self.history_size > 0:
            self._history.append(document)
            while len(self._history) > self.history_size:
                self._history.popleft()

    def record_stamp(self, timestamp: float) -> None:
        """Record one published document by timestamp alone.

        The streaming-ingest fast path never materializes a document
        object; it only engages when ``history_size == 0``, so stats are
        the whole record.
        """
        self.num_documents += 1
        self.last_timestamp = timestamp

    def history(self) -> list[XmlDocument]:
        """The most recent documents (up to ``history_size``)."""
        return list(self._history)


class StreamRegistry:
    """All streams known to a broker."""

    def __init__(self, history_size: int = 0):
        self._streams: dict[str, Stream] = {}
        self._history_size = history_size

    def get_or_create(self, name: str) -> Stream:
        """Return the stream called ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = Stream(name=name, history_size=self._history_size)
            self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __iter__(self) -> Iterable[str]:
        return iter(self._streams)

    def names(self) -> list[str]:
        """All stream names seen so far."""
        return list(self._streams)

    def stats(self) -> dict[str, int]:
        """Documents published per stream."""
        return {name: stream.num_documents for name, stream in self._streams.items()}
