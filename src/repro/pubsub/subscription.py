"""Subscriptions: a registered query, its lifecycle, and its delivery sinks.

A subscription has a real lifecycle now:

* :meth:`Subscription.pause` / :meth:`Subscription.resume` — temporarily
  mute deliveries; the query stays registered and keeps costing processing
  time (the old ``unsubscribe`` semantics).
* :meth:`Subscription.cancel` — *retract* the subscription: the broker
  deregisters the query from its engine, releasing its templates,
  relevance-index postings, plan-cache entries and join state (see
  :meth:`repro.core.engine._BaseEngine.deregister_query`).

Deliveries flow through :class:`~repro.pubsub.sinks.DeliverySink` objects on
both the join and the single-block filter path.  The legacy ``callback=``
and ``results`` surfaces are thin views over a :class:`CallbackSink` and a
bounded :class:`CollectingSink`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.results import Match
from repro.xmlmodel.document import XmlDocument
from repro.xscl.ast import XsclQuery

#: Default bound on the legacy ``Subscription.results`` collection.  The
#: pre-sink behavior (grow forever) is available with ``result_limit=None``.
DEFAULT_RESULT_LIMIT = 1024


@dataclass
class SubscriptionResult:
    """One delivery to a subscriber.

    For join queries ``match`` carries the document pair and bindings and
    ``output`` the constructed output document (when available).  For simple
    filter subscriptions ``document`` is the matching input document.
    """

    subscription_id: str
    document: Optional[XmlDocument] = None
    match: Optional[Match] = None
    output: Optional[XmlDocument] = None


#: Type of subscriber callbacks.
Callback = Callable[[SubscriptionResult], None]


class Subscription:
    """A registered subscription handle.

    Parameters
    ----------
    subscription_id:
        The broker-assigned id (also the engine query id for join queries).
    query:
        The parsed XSCL query.
    callback:
        Called once per match (wrapped in a
        :class:`~repro.pubsub.sinks.CallbackSink`); ``None`` means results
        are only collected.
    sink:
        An additional :class:`~repro.pubsub.sinks.DeliverySink` receiving
        every result (queues, batches, custom destinations).
    result_limit:
        Bound on the legacy :attr:`results` collection (``None`` keeps it
        unbounded, the pre-sink behavior).
    """

    def __init__(
        self,
        subscription_id: str,
        query: XsclQuery,
        callback: Optional[Callback] = None,
        sink: Optional[object] = None,
        result_limit: Optional[int] = DEFAULT_RESULT_LIMIT,
    ):
        from repro.pubsub.sinks import CallbackSink, CollectingSink

        self.subscription_id = subscription_id
        self.query = query
        self.callback = callback
        self.active = True
        self.cancelled = False
        self._collector = CollectingSink(max_results=result_limit)
        self.sinks: list = [self._collector]
        if callback is not None:
            self.sinks.append(CallbackSink(callback))
        if sink is not None:
            self.sinks.append(sink)
        self._sinks_closed = False
        # Bound by the owning broker; performs the engine-side retraction.
        self._retract: Optional[Callable[[str], bool]] = None

    # ------------------------------------------------------------------ #
    # delivery
    # ------------------------------------------------------------------ #
    @property
    def is_join_subscription(self) -> bool:
        """True when the subscription is an inter-document (join) query."""
        return self.query.is_join_query

    def deliver(self, result: SubscriptionResult) -> None:
        """Route one result through every attached sink (if active)."""
        if not self.active:
            return
        for sink in self.sinks:
            sink.deliver(result)

    def attach_sink(self, sink) -> None:
        """Attach an additional delivery sink."""
        self.sinks.append(sink)

    @property
    def results(self) -> List[SubscriptionResult]:
        """The retained deliveries (bounded by ``result_limit``), oldest first.

        Returns a fresh snapshot list on every access: mutating it (e.g.
        ``sub.results.clear()``) does not affect the retained results.  To
        drop the retained results, clear the collecting sink itself
        (``sub.sinks[0].clear()``).
        """
        return self._collector.results

    @property
    def num_results(self) -> int:
        """Number of deliveries made so far (including any beyond the bound)."""
        return self._collector.delivered

    @property
    def num_results_dropped(self) -> int:
        """Deliveries evicted from :attr:`results` by the bound."""
        return self._collector.dropped

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def pause(self) -> None:
        """Mute deliveries; the query stays registered (cheap to resume)."""
        self.active = False

    def resume(self) -> None:
        """Resume deliveries after :meth:`pause`.

        A cancelled subscription cannot be resumed — its query was
        deregistered; subscribe again instead.
        """
        if self.cancelled:
            raise RuntimeError(
                f"subscription {self.subscription_id!r} was cancelled; "
                "its query is no longer registered — subscribe again"
            )
        self.active = True

    def cancel(self) -> bool:
        """Retract the subscription: deregister its query and reclaim state.

        Returns ``True`` if the subscription was cancelled by this call
        (``False`` when already cancelled).  Flushes and closes the attached
        sinks.  Idempotent.
        """
        if self.cancelled:
            return False
        if self._retract is not None:
            self._retract(self.subscription_id)
        else:
            self._mark_cancelled()
        return True

    def _mark_cancelled(self) -> None:
        """Broker-side bookkeeping: deactivate and close the sinks."""
        self.active = False
        self.cancelled = True
        self.close_sinks()

    def flush(self) -> None:
        """Flush every attached sink (e.g. pending batches)."""
        for sink in self.sinks:
            sink.flush()

    def close_sinks(self) -> None:
        """Flush and close every attached sink.

        Every sink gets its ``close()`` call even if an earlier one raises
        (a :class:`~repro.pubsub.sinks.BatchingSink` later in the list must
        still flush its pending batch); the first error is re-raised after
        the loop.  Idempotent: once every sink has had its ``close()``
        attempt, later calls (cancel followed by broker close) are no-ops —
        a sink that raised is not retried.
        """
        if self._sinks_closed:
            return
        self._sinks_closed = True
        first_error: Optional[BaseException] = None
        for sink in self.sinks:
            try:
                sink.close()
            except BaseException as exc:  # noqa: BLE001 - close all sinks
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("active" if self.active else "paused")
        return (
            f"<Subscription {self.subscription_id!r} {state} "
            f"results={self.num_results}>"
        )
