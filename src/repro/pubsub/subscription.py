"""Subscriptions: a registered query plus its delivery callback."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.results import Match
from repro.xmlmodel.document import XmlDocument
from repro.xscl.ast import XsclQuery


@dataclass
class SubscriptionResult:
    """One delivery to a subscriber.

    For join queries ``match`` carries the document pair and bindings and
    ``output`` the constructed output document (when available).  For simple
    filter subscriptions ``document`` is the matching input document.
    """

    subscription_id: str
    document: Optional[XmlDocument] = None
    match: Optional[Match] = None
    output: Optional[XmlDocument] = None


#: Type of subscriber callbacks.
Callback = Callable[[SubscriptionResult], None]


@dataclass
class Subscription:
    """A registered subscription.

    Attributes
    ----------
    subscription_id:
        The broker-assigned id (also the engine query id for join queries).
    query:
        The parsed XSCL query.
    callback:
        Called once per match; ``None`` means results are only collected in
        :attr:`results`.
    active:
        Inactive subscriptions are kept registered but receive no deliveries.
    results:
        All deliveries made so far (also kept when a callback is set).
    """

    subscription_id: str
    query: XsclQuery
    callback: Optional[Callback] = None
    active: bool = True
    results: list[SubscriptionResult] = field(default_factory=list)

    @property
    def is_join_subscription(self) -> bool:
        """True when the subscription is an inter-document (join) query."""
        return self.query.is_join_query

    def deliver(self, result: SubscriptionResult) -> None:
        """Record a result and invoke the callback (if any and if active)."""
        if not self.active:
            return
        self.results.append(result)
        if self.callback is not None:
            self.callback(result)

    @property
    def num_results(self) -> int:
        """Number of deliveries made so far."""
        return len(self.results)
