"""The brokers' shared front end for single-block filter subscriptions.

Both :class:`repro.pubsub.Broker` and :class:`repro.runtime.ShardedBroker`
evaluate simple (non-join) subscriptions once, centrally, against a shared
Stage 1 evaluator — only join subscriptions go to the engines/shards.  This
module owns that front end, including *retraction*: a cancelled filter
subscription's pattern variables are reference-counted and withdrawn from
the evaluator when their last subscription is gone, mirroring the engines'
``deregister_query`` path.
"""

from __future__ import annotations

from typing import Optional

from repro.pubsub.subscription import Subscription, SubscriptionResult
from repro.xmlmodel.document import XmlDocument
from repro.xpath.evaluator import Stage1Registrations, XPathEvaluator

__all__ = ["FilterFrontEnd", "deliver_filter_matches"]


def deliver_filter_matches(
    evaluator: XPathEvaluator,
    filter_subscriptions: dict[str, Subscription],
    document: XmlDocument,
) -> list[SubscriptionResult]:
    """Evaluate all single-block filter subscriptions against one document.

    Deliveries go through :meth:`Subscription.deliver`, i.e. through the
    subscription's sinks — the filter path and the join path are symmetric.
    """
    if not filter_subscriptions:
        return []
    witnesses = evaluator.evaluate(document)
    deliveries: list[SubscriptionResult] = []
    for sid, subscription in filter_subscriptions.items():
        if not subscription.active:
            continue
        root_var = subscription.query.left.root_variable
        block_vars = subscription.query.left.variables()
        matched_var = root_var if root_var is not None else (block_vars[0] if block_vars else None)
        if matched_var is not None and witnesses.var_nodes.get(matched_var):
            result = SubscriptionResult(subscription_id=sid, document=document)
            subscription.deliver(result)
            deliveries.append(result)
    return deliveries


class FilterFrontEnd:
    """Registration, evaluation and retraction of filter subscriptions."""

    def __init__(self) -> None:
        self.evaluator = XPathEvaluator()
        self.subscriptions: dict[str, Subscription] = {}
        self._stage1 = Stage1Registrations()

    def register(self, sid: str, subscription: Subscription) -> None:
        """Register one filter subscription's pattern with the shared evaluator."""
        pattern = subscription.query.left.pattern
        variables = tuple(pattern.variables())
        edges: list[tuple[str, str]] = []
        for var in variables:
            parent = pattern.parent_of(var)
            if parent is not None:
                edges.append((parent, var))
        self.evaluator.register_pattern(pattern)
        self.subscriptions[sid] = subscription
        self._stage1.record(sid, variables, edges)

    def cancel(self, sid: str) -> bool:
        """Retract one filter subscription; returns whether it was registered.

        Pattern variables and edges shared with other filter subscriptions
        (identical names must have identical definitions, enforced at
        registration) survive until their last subscription is cancelled.
        """
        if self.subscriptions.pop(sid, None) is None:
            return False
        dead_vars, dead_edges = self._stage1.withdraw(sid)
        if dead_vars or dead_edges:
            self.evaluator.deregister(variables=dead_vars, edges=dead_edges)
        return True

    def __contains__(self, sid: str) -> bool:
        return sid in self.subscriptions

    def deliver(self, document: XmlDocument) -> list[SubscriptionResult]:
        """Deliver one document to every active filter subscription."""
        return deliver_filter_matches(self.evaluator, self.subscriptions, document)

    @property
    def num_subscriptions(self) -> int:
        """Currently registered (non-cancelled) filter subscriptions."""
        return len(self.subscriptions)
