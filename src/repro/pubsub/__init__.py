"""The publish/subscribe layer: streams, subscriptions, and the broker.

This is the user-facing face of the system: publishers push XML documents
into named streams, subscribers register XSCL queries (simple single-block
filters or inter-document join queries) and receive matches through
callbacks.  Internally the broker delegates join queries to one of the Stage
2 engines (:class:`~repro.core.engine.MMQJPEngine` by default); constructed
with ``shards=N`` (N > 1) it transparently becomes a
:class:`repro.runtime.ShardedBroker` running N engine shards in parallel.
"""

from repro.pubsub.subscription import DEFAULT_RESULT_LIMIT, Subscription, SubscriptionResult
from repro.pubsub.sinks import (
    BatchingSink,
    CallbackSink,
    CollectingSink,
    DeliverySink,
    QueueSink,
)
from repro.pubsub.stream import Stream, StreamRegistry
from repro.pubsub.filters import FilterFrontEnd
from repro.pubsub.broker import Broker

__all__ = [
    "Subscription",
    "SubscriptionResult",
    "DEFAULT_RESULT_LIMIT",
    "DeliverySink",
    "CallbackSink",
    "CollectingSink",
    "QueueSink",
    "BatchingSink",
    "Stream",
    "StreamRegistry",
    "FilterFrontEnd",
    "Broker",
]
