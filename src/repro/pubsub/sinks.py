"""Delivery sinks: pluggable destinations for subscription results.

The original :class:`~repro.pubsub.subscription.Subscription` hard-wired two
delivery mechanisms — a bare callback and an *unbounded* ``results`` list
that grew forever on long-running streams.  A :class:`DeliverySink` is the
protocol both of those become one instance of, and the extension point for
everything else a subscriber might want (queues for worker threads, batches
for downstream I/O):

* :class:`CallbackSink` — invoke a callable per result (the old
  ``callback=``).
* :class:`CollectingSink` — collect results in memory, optionally bounded
  (the old ``results`` list; bounded by default when used through
  :class:`~repro.pubsub.subscription.Subscription`).
* :class:`QueueSink` — push results onto a :class:`queue.Queue` for
  consumption by another thread.
* :class:`BatchingSink` — buffer results and deliver them in lists of
  ``batch_size`` (flushed on :meth:`~BatchingSink.flush`/:meth:`~BatchingSink.close`,
  which the brokers call when a subscription is cancelled or the session
  closes).

Sinks receive every result exactly once, on both the join path and the
single-block filter path — the two delivery paths of the brokers are
symmetric by construction now that both go through
:meth:`Subscription.deliver`.
"""

from __future__ import annotations

import queue as _queue
from collections import deque
from typing import Callable, List, Optional, Protocol, runtime_checkable

from repro.pubsub.subscription import SubscriptionResult

__all__ = [
    "DeliverySink",
    "CallbackSink",
    "CollectingSink",
    "QueueSink",
    "BatchingSink",
]


@runtime_checkable
class DeliverySink(Protocol):
    """The destination of a subscription's deliveries.

    ``deliver`` is called once per matching result; ``flush`` forces out any
    buffered results; ``close`` releases resources (and flushes).  All three
    must be safe to call on an already-closed sink.
    """

    def deliver(self, result: SubscriptionResult) -> None:  # pragma: no cover
        ...

    def flush(self) -> None:  # pragma: no cover
        ...

    def close(self) -> None:  # pragma: no cover
        ...


class _BaseSink:
    """Shared no-op ``flush``/``close`` for unbuffered sinks."""

    def flush(self) -> None:
        return None

    def close(self) -> None:
        self.flush()


class CallbackSink(_BaseSink):
    """Deliver each result to a callable — the classic ``callback=``."""

    def __init__(self, callback: Callable[[SubscriptionResult], None]):
        self.callback = callback

    def deliver(self, result: SubscriptionResult) -> None:
        self.callback(result)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CallbackSink {self.callback!r}>"


class CollectingSink(_BaseSink):
    """Collect results in memory, optionally bounded.

    With ``max_results`` set, only the most recent ``max_results`` results
    are retained (older ones are dropped and counted in :attr:`dropped`);
    :attr:`delivered` always counts every delivery.  This is the sink behind
    the legacy :attr:`Subscription.results` list, bounded by default so a
    subscription on an infinite stream no longer grows without limit.
    """

    def __init__(self, max_results: Optional[int] = None):
        if max_results is not None and max_results < 1:
            raise ValueError(f"max_results must be positive or None, got {max_results}")
        self.max_results = max_results
        self._results: deque[SubscriptionResult] = deque(maxlen=max_results)
        self.delivered = 0
        self.dropped = 0

    def deliver(self, result: SubscriptionResult) -> None:
        if self.max_results is not None and len(self._results) == self.max_results:
            self.dropped += 1
        self._results.append(result)
        self.delivered += 1

    @property
    def results(self) -> List[SubscriptionResult]:
        """The retained results, oldest first."""
        return list(self._results)

    def clear(self) -> None:
        """Drop all retained results (counters are kept)."""
        self._results.clear()

    def __len__(self) -> int:
        return len(self._results)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CollectingSink {len(self._results)} retained / "
            f"{self.delivered} delivered (max={self.max_results})>"
        )


class QueueSink(_BaseSink):
    """Push each result onto a :class:`queue.Queue` for another thread.

    Pass an existing queue to share it across subscriptions, or let the sink
    create its own (``maxsize=0`` means unbounded).  When the queue is
    bounded and full, the oldest queued result is discarded to make room —
    delivery never blocks the publish path.
    """

    def __init__(self, queue: Optional[_queue.Queue] = None, maxsize: int = 0):
        self.queue: _queue.Queue = queue if queue is not None else _queue.Queue(maxsize)
        self.dropped = 0

    def deliver(self, result: SubscriptionResult) -> None:
        while True:
            try:
                self.queue.put_nowait(result)
                return
            except _queue.Full:
                try:
                    self.queue.get_nowait()
                    self.dropped += 1
                except _queue.Empty:  # pragma: no cover - racing consumer
                    continue

    def get(self, timeout: Optional[float] = None) -> SubscriptionResult:
        """Pop the next result (blocking up to ``timeout`` seconds)."""
        return self.queue.get(timeout=timeout)

    def drain(self) -> List[SubscriptionResult]:
        """Pop and return everything currently queued (non-blocking)."""
        out: List[SubscriptionResult] = []
        while True:
            try:
                out.append(self.queue.get_nowait())
            except _queue.Empty:
                return out


class BatchingSink:
    """Buffer results and deliver them to a callable in batches.

    ``on_batch`` receives a list of at most ``batch_size`` results.  A
    partial batch is held until :meth:`flush` (the brokers flush on
    ``close()`` and on subscription cancellation, so no result is ever
    silently dropped).
    """

    def __init__(
        self,
        on_batch: Callable[[List[SubscriptionResult]], None],
        batch_size: int = 32,
    ):
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.on_batch = on_batch
        self.batch_size = batch_size
        self._pending: List[SubscriptionResult] = []
        self.batches_delivered = 0

    def deliver(self, result: SubscriptionResult) -> None:
        self._pending.append(result)
        if len(self._pending) >= self.batch_size:
            self.flush()

    def flush(self) -> None:
        if self._pending:
            batch, self._pending = self._pending, []
            self.batches_delivered += 1
            self.on_batch(batch)

    def close(self) -> None:
        self.flush()

    @property
    def num_pending(self) -> int:
        """Results buffered but not yet delivered as a batch."""
        return len(self._pending)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BatchingSink size={self.batch_size} pending={len(self._pending)}>"
