"""The XML publish/subscribe broker.

The broker is the message-broker front end the paper's introduction
motivates: it accepts subscriptions (XSCL queries) and incoming XML
documents, and delivers matches to subscribers.

* Join (inter-document) subscriptions are delegated to one of the Stage 2
  engines — MMQJP by default, MMQJP with view materialization, or the
  sequential baseline — selected with the ``engine`` parameter.
* Simple single-block subscriptions (``SELECT * FROM blog`` or a lone query
  block) are evaluated directly by the shared Stage 1 evaluator, like a
  classic XPath pub/sub system.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Union

from repro.core.engine import ENGINES, make_engine
from repro.pubsub.stream import StreamRegistry
from repro.pubsub.subscription import Callback, Subscription, SubscriptionResult
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.parser import parse_document
from repro.xpath.evaluator import XPathEvaluator
from repro.xscl.ast import XsclQuery
from repro.xscl.parser import parse_query

__all__ = ["Broker", "ENGINES", "deliver_filter_matches"]


def deliver_filter_matches(
    evaluator: XPathEvaluator,
    filter_subscriptions: dict[str, Subscription],
    document: XmlDocument,
) -> list[SubscriptionResult]:
    """Evaluate all single-block filter subscriptions against one document.

    Shared by :class:`Broker` and :class:`repro.runtime.ShardedBroker`
    (filters are evaluated once at the front end; only join subscriptions
    are sharded).
    """
    if not filter_subscriptions:
        return []
    witnesses = evaluator.evaluate(document)
    deliveries: list[SubscriptionResult] = []
    for sid, subscription in filter_subscriptions.items():
        if not subscription.active:
            continue
        root_var = subscription.query.left.root_variable
        block_vars = subscription.query.left.variables()
        matched_var = root_var if root_var is not None else (block_vars[0] if block_vars else None)
        if matched_var is not None and witnesses.var_nodes.get(matched_var):
            result = SubscriptionResult(subscription_id=sid, document=document)
            subscription.deliver(result)
            deliveries.append(result)
    return deliveries


class Broker:
    """An XML publish/subscribe broker supporting inter-document join queries.

    Parameters
    ----------
    engine:
        ``"mmqjp"`` (default), ``"mmqjp-vm"`` (with Section 5 view
        materialization) or ``"sequential"`` (the baseline).
    view_cache_size:
        Size of the ``RL``-slice view cache for ``"mmqjp-vm"``; ``None``
        recomputes the views per document without caching.
    construct_outputs:
        Build the output XML document for every join match (slower; disable
        for throughput measurements).
    stream_history:
        How many recent documents each stream keeps for inspection.
    auto_prune:
        Prune the engine's join state by window horizon on the publish path
        (effective while every registered window is finite).  Disable to
        keep all state and prune manually via :meth:`prune`.
    indexing:
        Join-state index maintenance of the underlying engine: ``"eager"``
        (default), ``"lazy"``, or ``"off"`` (per-call hashing, the
        pre-incremental behavior kept for ablation/equivalence runs).
    plan_cache:
        Evaluate conjunctive queries through compiled, cached plans
        (default).  ``False`` re-plans per call — the ablation baseline.
    prune_dispatch:
        Skip templates/queries irrelevant to the published document
        (default).  ``False`` visits every registered template/query.
    shards:
        Escape hatch to the sharded runtime: with ``shards`` > 1 the
        constructor returns a :class:`repro.runtime.ShardedBroker` instead
        (same leading parameters, plus ``partitioner=`` / ``executor=`` and
        the other :class:`~repro.runtime.sharded_broker.ShardedBroker`
        keyword options).
    """

    def __new__(cls, *args, **kwargs):
        shards = kwargs.get("shards")
        if cls is Broker and shards is not None and shards > 1:
            from repro.runtime.sharded_broker import ShardedBroker

            return ShardedBroker(*args, **kwargs)
        return super().__new__(cls)

    def __init__(
        self,
        engine: str = "mmqjp",
        view_cache_size: Optional[int] = None,
        construct_outputs: bool = True,
        stream_history: int = 0,
        *,
        auto_prune: bool = True,
        indexing: str = "eager",
        plan_cache: bool = True,
        prune_dispatch: bool = True,
        shards: Optional[int] = None,
    ):
        if shards is not None and shards < 1:
            raise ValueError(f"need at least one shard, got {shards}")
        if shards is not None and shards > 1:
            # Only reachable when __new__ did not reroute to the sharded
            # runtime (i.e. from a Broker subclass): refuse rather than
            # silently running everything on one engine.
            raise ValueError(
                f"{type(self).__name__} cannot honor shards={shards}; construct "
                "repro.runtime.ShardedBroker (or plain Broker) directly"
            )
        self.engine_name = engine
        self.engine = make_engine(
            engine,
            view_cache_size=view_cache_size,
            auto_prune=auto_prune,
            indexing=indexing,
            plan_cache=plan_cache,
            prune_dispatch=prune_dispatch,
        )
        self.construct_outputs = construct_outputs
        self.streams = StreamRegistry(history_size=stream_history)
        self._subscriptions: dict[str, Subscription] = {}
        self._filter_evaluator = XPathEvaluator()
        self._filter_subscriptions: dict[str, Subscription] = {}
        self._sub_counter = itertools.count(1)

    # ------------------------------------------------------------------ #
    # subscriptions
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        query: Union[str, XsclQuery],
        callback: Optional[Callback] = None,
        window_symbols: Optional[dict[str, float]] = None,
        subscription_id: Optional[str] = None,
    ) -> Subscription:
        """Register a subscription and return its :class:`Subscription` handle."""
        if isinstance(query, str):
            query = parse_query(query, window_symbols=window_symbols)
        sid = subscription_id if subscription_id is not None else f"sub{next(self._sub_counter)}"
        if sid in self._subscriptions:
            raise ValueError(f"subscription id {sid!r} already exists")
        subscription = Subscription(subscription_id=sid, query=query, callback=callback)

        if query.is_join_query:
            self.engine.register_query(query, qid=sid)
        else:
            # Single-block filter subscription: register its pattern with the
            # broker's own Stage 1 evaluator.
            self._filter_evaluator.register_pattern(query.left.pattern)
            self._filter_subscriptions[sid] = subscription
        self._subscriptions[sid] = subscription
        return subscription

    def unsubscribe(self, subscription_id: str) -> None:
        """Deactivate a subscription (its query stays registered but is muted)."""
        subscription = self._subscriptions.get(subscription_id)
        if subscription is not None:
            subscription.active = False

    def subscription(self, subscription_id: str) -> Subscription:
        """Return a subscription handle by id."""
        return self._subscriptions[subscription_id]

    @property
    def subscriptions(self) -> list[Subscription]:
        """All subscriptions, in registration order."""
        return list(self._subscriptions.values())

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float] = None,
        stream: Optional[str] = None,
    ) -> list[SubscriptionResult]:
        """Publish one document and deliver all resulting matches.

        Returns the deliveries made for this document (also pushed to the
        subscriber callbacks).
        """
        if isinstance(document, str):
            document = parse_document(document)
        if stream is not None:
            document.stream = stream
        if timestamp is not None:
            document.timestamp = float(timestamp)
        self.streams.get_or_create(document.stream).record(document)

        deliveries: list[SubscriptionResult] = []
        deliveries.extend(self._deliver_filters(document))

        matches = self.engine.process_document(document)
        for match in matches:
            subscription = self._subscriptions.get(match.qid)
            if subscription is None or not subscription.active:
                continue
            output = None
            if self.construct_outputs:
                output = self.engine.output_document(match)
            result = SubscriptionResult(
                subscription_id=match.qid, match=match, output=output
            )
            subscription.deliver(result)
            deliveries.append(result)
        return deliveries

    def publish_stream(
        self, documents: Iterable[Union[str, XmlDocument]]
    ) -> list[SubscriptionResult]:
        """Publish a sequence of documents; returns all deliveries."""
        out: list[SubscriptionResult] = []
        for document in documents:
            out.extend(self.publish(document))
        return out

    def publish_many(
        self,
        documents: Iterable[Union[str, XmlDocument]],
        timestamp: Optional[float] = None,
        stream: Optional[str] = None,
    ) -> list[SubscriptionResult]:
        """Publish a batch of documents; returns all deliveries.

        On the unsharded broker this is a convenience loop; on the sharded
        runtime (``shards=N``) the same call dispatches the whole batch to
        every shard in one task each.
        """
        out: list[SubscriptionResult] = []
        for document in documents:
            out.extend(self.publish(document, timestamp=timestamp, stream=stream))
        return out

    def _deliver_filters(self, document: XmlDocument) -> list[SubscriptionResult]:
        return deliver_filter_matches(
            self._filter_evaluator, self._filter_subscriptions, document
        )

    # ------------------------------------------------------------------ #
    # state management and stats
    # ------------------------------------------------------------------ #
    def prune(self, min_timestamp: float) -> int:
        """Prune join state older than ``min_timestamp``; returns documents removed."""
        return self.engine.prune(min_timestamp)

    def stats(self) -> dict:
        """Broker-level statistics: per-stream counts alongside engine stats."""
        stream_counts = self.streams.stats()
        return {
            "engine": self.engine_name,
            "indexing": self.engine.indexing,
            "streams": stream_counts,
            "num_subscriptions": len(self._subscriptions),
            "num_filter_subscriptions": len(self._filter_subscriptions),
            "num_documents_published": sum(stream_counts.values()),
            "engine_stats": self.engine.stats().__dict__,
        }
