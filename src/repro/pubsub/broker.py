"""The XML publish/subscribe broker.

The broker is the message-broker front end the paper's introduction
motivates: it accepts subscriptions (XSCL queries) and incoming XML
documents, and delivers matches to subscribers.

* Join (inter-document) subscriptions are delegated to one of the Stage 2
  engines — MMQJP by default, MMQJP with view materialization, or the
  sequential baseline — selected through
  :class:`~repro.config.RuntimeConfig`.
* Simple single-block subscriptions (``SELECT * FROM blog`` or a lone query
  block) are evaluated directly by the shared Stage 1 evaluator, like a
  classic XPath pub/sub system.

The blessed construction path is :func:`repro.open_broker`, which routes to
the sharded runtime when ``config.shards > 1``; constructing ``Broker``
directly still works (and still reroutes on ``shards=N``, with a
:class:`DeprecationWarning`).
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Iterable, Optional, Union

from repro.config import RuntimeConfig, coerce_config, metrics_enabled, resolve_ingest
from repro.core.engine import ENGINES, make_engine
from repro.metrics import MetricsRegistry, merge_snapshots
from repro.pubsub.filters import FilterFrontEnd, deliver_filter_matches
from repro.pubsub.stream import StreamRegistry
from repro.pubsub.subscription import Callback, Subscription, SubscriptionResult
from repro.storage import SubscriptionRecord, open_member_store, resolve_storage
from repro.storage.recovery import config_snapshot
from repro.xmlmodel.document import XmlDocument
from repro.xmlmodel.parser import parse_document
from repro.xscl.ast import XsclQuery
from repro.xscl.parser import parse_query
from repro.xscl.render import render_query

__all__ = ["Broker", "ENGINES", "deliver_filter_matches"]


def _peek_config(config, legacy: dict) -> Optional[RuntimeConfig]:
    """Resolve the would-be config of a ``Broker(...)`` call.

    Used by ``Broker.__new__`` to decide whether to reroute to the sharded
    runtime; any legacy-kwarg :class:`DeprecationWarning` fires here (once)
    and ``__init__`` reuses the resolved config.  Returns ``None`` when the
    arguments are invalid — the real constructor raises the proper error.
    """
    try:
        # stacklevel: coerce_config -> _peek_config -> __new__ -> caller
        return coerce_config(config, legacy, owner="Broker", stacklevel=4)
    except (TypeError, ValueError):
        return None


class Broker:
    """An XML publish/subscribe broker supporting inter-document join queries.

    Parameters
    ----------
    config:
        A :class:`~repro.config.RuntimeConfig` (or an engine-name string as
        shorthand for ``RuntimeConfig(engine=...)``).  The historical
        per-knob keyword arguments (``engine=``, ``indexing=``,
        ``construct_outputs=``, ...) are still accepted and construct
        identical behavior, but emit a :class:`DeprecationWarning`.

    Constructing ``Broker`` with ``shards > 1`` (via config or the legacy
    keyword) returns a :class:`repro.runtime.ShardedBroker` instead, with a
    :class:`DeprecationWarning` — use :func:`repro.open_broker`, which makes
    the broker flavor an implementation detail.
    """

    def __new__(cls, config: Union[RuntimeConfig, str, None] = None, **legacy):
        if cls is Broker:
            resolved = _peek_config(config, legacy)
            if resolved is not None:
                if resolved.shards > 1:
                    warnings.warn(
                        "Broker(shards=N) is deprecated; use repro.open_broker("
                        "RuntimeConfig(shards=N)) — the façade routes to the "
                        "sharded runtime explicitly",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    from repro.runtime.sharded_broker import ShardedBroker

                    return ShardedBroker(resolved)
                instance = super().__new__(cls)
                instance._resolved_config = resolved
                return instance
        return super().__new__(cls)

    def __init__(self, config: Union[RuntimeConfig, str, None] = None, **legacy):
        resolved = self.__dict__.pop("_resolved_config", None)
        config = (
            resolved
            if resolved is not None
            else coerce_config(config, legacy, owner="Broker")
        )
        if config.shards > 1:
            # Only reachable when __new__ did not reroute to the sharded
            # runtime (i.e. from a Broker subclass): refuse rather than
            # silently running everything on one engine.
            raise ValueError(
                f"{type(self).__name__} cannot honor shards={config.shards}; construct "
                "repro.runtime.ShardedBroker (or use repro.open_broker) instead"
            )
        config.validate_outputs()
        self.config = config
        self.engine_name = config.engine
        # Durable storage: "memory" attaches nothing anywhere; "sqlite"
        # opens one registry store for the broker and one state store for
        # the engine (the single "shard" of the unsharded topology, so the
        # on-disk layout matches ShardedBroker's and recovery is uniform).
        self.storage, self.storage_path = resolve_storage(config)
        self._store = open_member_store(
            self.storage, self.storage_path, "broker", config.durability
        )
        self.engine = make_engine(
            config=config,
            store=open_member_store(
                self.storage, self.storage_path, "shard-0", config.durability
            ),
        )
        self.construct_outputs = config.construct_outputs
        self._ingest = resolve_ingest(config)
        self.streams = StreamRegistry(history_size=config.stream_history)
        self._subscriptions: dict[str, Subscription] = {}
        # Lazy match materialization: a join match whose subscription is
        # missing, cancelled or paused is dropped by _deliver_matches
        # anyway, so the processor skips building the Match object at all
        # (such matches consequently never count toward num_matches).
        self.engine.set_match_filter(self._match_deliverable)
        self._filters = FilterFrontEnd()
        self._sub_counter = 1
        self._reg_seq = 0
        self._closed = False
        # Observability (RuntimeConfig.metrics / REPRO_METRICS): the broker
        # registry holds publish latency and delivery lag; the engine keeps
        # its own per-stage registry and both merge in stats()["metrics"].
        self.metrics = MetricsRegistry() if metrics_enabled(config) else None
        if self._store is not None:
            self._store.set_meta("config", config_snapshot(config))

    def _match_deliverable(self, qid: str) -> bool:
        """Whether matches of ``qid`` could currently be delivered."""
        subscription = self._subscriptions.get(qid)
        return subscription is not None and subscription.active

    # ------------------------------------------------------------------ #
    # subscriptions
    # ------------------------------------------------------------------ #
    def subscribe(
        self,
        query: Union[str, XsclQuery],
        callback: Optional[Callback] = None,
        window_symbols: Optional[dict[str, float]] = None,
        subscription_id: Optional[str] = None,
        sink=None,
    ) -> Subscription:
        """Register a subscription and return its :class:`Subscription` handle.

        ``sink`` attaches a :class:`~repro.pubsub.sinks.DeliverySink`
        receiving every result (in addition to the legacy bounded
        ``results`` collection and the optional ``callback``).
        """
        if isinstance(query, str):
            query = parse_query(query, window_symbols=window_symbols)
        sid = subscription_id if subscription_id is not None else self._next_sid()
        if sid in self._subscriptions:
            raise ValueError(f"subscription id {sid!r} already exists")
        subscription = Subscription(
            subscription_id=sid,
            query=query,
            callback=callback,
            sink=sink,
            result_limit=self.config.result_limit,
        )

        if query.is_join_query:
            self.engine.register_query(query, qid=sid)
        else:
            self._filters.register(sid, subscription)
        self._subscriptions[sid] = subscription
        subscription._retract = self.cancel
        if self._store is not None:
            self._persist_subscription(sid, query)
        return subscription

    def _next_sid(self) -> str:
        sid = f"sub{self._sub_counter}"
        self._sub_counter += 1
        return sid

    def _persist_subscription(self, sid: str, query: XsclQuery) -> None:
        """Record one registration in the durable registry.

        The query is persisted as rendered text (windows numeric, so no
        window-symbol table is needed to replay it); ``seq`` preserves the
        broker-wide registration order recovery replays in.
        """
        self._reg_seq += 1
        self._store.save_subscription(
            SubscriptionRecord(
                seq=self._reg_seq,
                subscription_id=sid,
                query_text=render_query(query),
                kind="join" if query.is_join_query else "filter",
                shard=None,
            )
        )
        self._store.set_meta("sub_counter", self._sub_counter)

    def _restore_subscription(self, record: SubscriptionRecord, query: XsclQuery) -> Subscription:
        """Re-register one persisted subscription (recovery replay path).

        Runs the live registration code path — engine templates, Stage 1
        registrations, plans and relevance postings rebuild exactly as they
        would on a fresh ``subscribe`` — but skips re-persisting the record.
        Callbacks and sinks are process-local and cannot be recovered;
        subscribers re-attach via ``broker.subscription(sid)``.
        """
        subscription = Subscription(
            subscription_id=record.subscription_id,
            query=query,
            result_limit=self.config.result_limit,
        )
        if query.is_join_query:
            self.engine.register_query(query, qid=record.subscription_id)
        else:
            self._filters.register(record.subscription_id, subscription)
        self._subscriptions[record.subscription_id] = subscription
        subscription._retract = self.cancel
        return subscription

    def cancel(self, subscription_id: str) -> bool:
        """Retract a subscription: deregister its query and reclaim state.

        Join subscriptions are deregistered from the engine (template
        ``RT`` tuple, relevance postings, compiled plans and reclaimable
        join-state rows included — see
        :meth:`repro.core.engine._BaseEngine.deregister_query`); filter
        subscriptions release their pattern registrations.  The
        subscription handle is kept (cancelled) so its id is never silently
        reused; its sinks are flushed and closed.  Returns ``True`` if this
        call performed the cancellation.
        """
        subscription = self._subscriptions.get(subscription_id)
        if subscription is None or subscription.cancelled:
            return False
        if not self._filters.cancel(subscription_id):
            self.engine.deregister_query(subscription_id)
        subscription._mark_cancelled()
        if self._store is not None:
            self._store.remove_subscription(subscription_id)
        return True

    def unsubscribe(self, subscription_id: str) -> None:
        """Retract a subscription (alias of :meth:`cancel`).

        Historically this only muted deliveries while the query kept
        consuming processing time and state; that behavior is now
        :meth:`mute`.
        """
        self.cancel(subscription_id)

    def mute(self, subscription_id: str) -> None:
        """Deactivate a subscription without retracting it (old ``unsubscribe``)."""
        subscription = self._subscriptions.get(subscription_id)
        if subscription is not None:
            subscription.pause()

    def subscription(self, subscription_id: str) -> Subscription:
        """Return a subscription handle by id."""
        return self._subscriptions[subscription_id]

    @property
    def subscriptions(self) -> list[Subscription]:
        """All subscriptions (cancelled ones included), in registration order."""
        return list(self._subscriptions.values())

    # ------------------------------------------------------------------ #
    # publishing
    # ------------------------------------------------------------------ #
    def _prepare(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float],
        stream: Optional[str],
    ) -> XmlDocument:
        """Parse one incoming document and record it on its stream."""
        if isinstance(document, str):
            document = parse_document(document)
        if self.metrics is not None:
            document.publish_stamp = perf_counter()
        if stream is not None:
            document.stream = stream
        if timestamp is not None:
            document.timestamp = float(timestamp)
        self.streams.get_or_create(document.stream).record(document)
        return document

    def _deliver_matches(
        self,
        matches,
        deliveries: list[SubscriptionResult],
        subscription_of: dict,
        publish_stamp: Optional[float] = None,
    ) -> None:
        """Deliver one document's join matches to their subscriptions.

        ``subscription_of`` caches the qid → subscription handle lookups
        across a batch, so repeated matches of the same query resolve
        without re-consulting the registry.  Activity is still checked per
        match — a delivery callback may pause or cancel mid-batch.
        ``publish_stamp`` (metrics mode) is the triggering document's
        publish timestamp; delivery lag is recorded against it after each
        sink delivery.
        """
        metrics = self.metrics
        for match in matches:
            qid = match.qid
            subscription = subscription_of.get(qid)
            if subscription is None:
                if qid in subscription_of:
                    continue  # interned negative entry: no such subscription
                subscription = self._subscriptions.get(qid)
                subscription_of[qid] = subscription
                if subscription is None:
                    continue
            if not subscription.active:
                continue
            output = None
            if self.construct_outputs:
                output = self.engine.output_document(match)
            result = SubscriptionResult(
                subscription_id=qid, match=match, output=output
            )
            subscription.deliver(result)
            deliveries.append(result)
            if metrics is not None:
                stamp = match.publish_stamp or publish_stamp
                if stamp is not None:
                    metrics.record_delivery_lag(qid, perf_counter() - stamp)

    def _record_filter_lag(self, results: list[SubscriptionResult], stamp) -> None:
        """Record delivery lag for one document's filter-path deliveries."""
        if stamp is None or not results:
            return
        now = perf_counter()
        for result in results:
            self.metrics.record_delivery_lag(result.subscription_id, now - stamp)

    def _text_fast_path(self) -> bool:
        """Whether a text publish can skip tree construction end to end.

        Beyond the engine-side conditions (``ingest="stream"``, no stored
        documents, no durable store) the broker itself must not need the
        document object: no single-block filter subscriptions to match
        against the tree, and no stream history to append it to.
        """
        return (
            self._ingest == "stream"
            and self._filters.num_subscriptions == 0
            and self.config.stream_history == 0
            and self.engine.store is None
            and not self.engine.store_documents
        )

    def _publish_text(
        self,
        text: str,
        timestamp: Optional[float],
        stream: Optional[str],
    ) -> list[SubscriptionResult]:
        """The streaming twin of :meth:`publish` for raw-text documents.

        Stream stats are recorded with the pre-engine timestamp (0.0 when
        none was given, exactly what :meth:`_prepare` leaves on a fresh
        parse), and the engine applies its usual auto-timestamping.
        """
        name = stream if stream is not None else "S"
        metrics = self.metrics
        stamp = perf_counter() if metrics is not None else None
        pre_ts = float(timestamp) if timestamp is not None else 0.0
        self.streams.get_or_create(name).record_stamp(pre_ts)
        matches = self.engine.process_text(
            text, timestamp=(pre_ts if pre_ts != 0.0 else None), stream=name
        )
        deliveries: list[SubscriptionResult] = []
        if metrics is None:
            self._deliver_matches(matches, deliveries, {})
        else:
            self._deliver_matches(matches, deliveries, {}, stamp)
            metrics.histogram("publish_latency").record(perf_counter() - stamp)
            metrics.counter("documents_published").inc()
            metrics.counter("results_delivered").inc(len(deliveries))
        return deliveries

    def publish(
        self,
        document: Union[str, XmlDocument],
        timestamp: Optional[float] = None,
        stream: Optional[str] = None,
    ) -> list[SubscriptionResult]:
        """Publish one document and deliver all resulting matches.

        Returns the deliveries made for this document (also pushed to the
        subscriber sinks).
        """
        if isinstance(document, str) and self._text_fast_path():
            return self._publish_text(document, timestamp, stream)
        document = self._prepare(document, timestamp, stream)
        deliveries: list[SubscriptionResult] = []
        filter_results = self._filters.deliver(document)
        deliveries.extend(filter_results)
        matches = self.engine.process_document(document)
        metrics = self.metrics
        if metrics is None:
            self._deliver_matches(matches, deliveries, {})
        else:
            stamp = document.publish_stamp
            self._record_filter_lag(filter_results, stamp)
            self._deliver_matches(matches, deliveries, {}, stamp)
            metrics.histogram("publish_latency").record(perf_counter() - stamp)
            metrics.counter("documents_published").inc()
            metrics.counter("results_delivered").inc(len(deliveries))
        return deliveries

    def publish_stream(
        self, documents: Iterable[Union[str, XmlDocument]]
    ) -> list[SubscriptionResult]:
        """Publish a sequence of documents one at a time; returns all deliveries.

        Unlike :meth:`publish_many`, each document is processed and
        delivered before the next is read: a delivery callback that
        subscribes or publishes mid-stream observes the same interleaving
        as a :meth:`publish` loop, and a generator input is consumed
        incrementally instead of being materialized up front.
        """
        out: list[SubscriptionResult] = []
        for document in documents:
            out.extend(self.publish(document))
        return out

    def publish_many(
        self,
        documents: Iterable[Union[str, XmlDocument]],
        timestamp: Optional[float] = None,
        stream: Optional[str] = None,
    ) -> list[SubscriptionResult]:
        """Publish a batch of documents; returns all deliveries.

        The batched ingestion fast path: the whole batch is parsed, stamped
        and stream-recorded up front, the engine processes it through
        :meth:`~repro.core.engine._BaseEngine.process_batch` (which hoists
        the relevance-index sync and docid interning out of the per-document
        loop), and deliveries reuse one qid → subscription cache for the
        whole batch.  Deliveries fire once the whole batch has been
        processed, grouped per document in arrival order (a document's
        filter deliveries, then its join matches) — and every result still
        flows through the subscription's sinks, so a
        :class:`~repro.pubsub.sinks.BatchingSink` naturally fills and
        flushes across the batch.  Use :meth:`publish_stream` when
        per-document interleaving of processing and delivery matters.
        """
        batch = [self._prepare(document, timestamp, stream) for document in documents]
        if not batch:
            return []
        per_document = self.engine.process_batch(batch)
        deliveries: list[SubscriptionResult] = []
        subscription_of: dict = {}
        metrics = self.metrics
        for document, matches in zip(batch, per_document):
            filter_results = self._filters.deliver(document)
            deliveries.extend(filter_results)
            if metrics is None:
                self._deliver_matches(matches, deliveries, subscription_of)
            else:
                self._record_filter_lag(filter_results, document.publish_stamp)
                self._deliver_matches(
                    matches, deliveries, subscription_of, document.publish_stamp
                )
        if metrics is not None:
            metrics.histogram("publish_batch_latency").record(
                perf_counter() - batch[0].publish_stamp
            )
            metrics.counter("documents_published").inc(len(batch))
            metrics.counter("results_delivered").inc(len(deliveries))
        return deliveries

    # ------------------------------------------------------------------ #
    # state management and stats
    # ------------------------------------------------------------------ #
    def prune(self, min_timestamp: float) -> int:
        """Prune join state older than ``min_timestamp``; returns documents removed."""
        return self.engine.prune(min_timestamp)

    def stats(self) -> dict:
        """Broker-level statistics: per-stream counts alongside engine stats."""
        stream_counts = self.streams.stats()
        return {
            "engine": self.engine_name,
            "indexing": self.engine.indexing,
            "storage": self.storage,
            "streams": stream_counts,
            "num_subscriptions": len(self._subscriptions),
            "num_filter_subscriptions": self._filters.num_subscriptions,
            "num_cancelled_subscriptions": sum(
                1 for s in self._subscriptions.values() if s.cancelled
            ),
            "num_documents_published": sum(stream_counts.values()),
            "engine_stats": self.engine.stats().__dict__,
            "metrics": self.metrics_snapshot(),
        }

    def metrics_snapshot(self) -> Optional[dict]:
        """Merged metrics snapshot (broker + engine), or ``None`` when disabled.

        Broker-side series: ``publish_latency`` / ``publish_batch_latency``
        histograms (publish-call wall time), the ``delivery_lag`` histogram
        plus per-subscription lag tracking, and the ``documents_published``
        / ``results_delivered`` counters.  Engine-side series: ``stage:*``
        histograms (one per measured pipeline stage).
        """
        if self.metrics is None:
            return None
        return merge_snapshots(
            [self.metrics.snapshot(), self.engine.metrics_snapshot()]
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """End the session (idempotent): close sinks, flush and close the stores.

        Every subscription's sinks are flushed and closed — a
        :class:`~repro.pubsub.sinks.BatchingSink` holding a partial batch
        delivers it here.  One sink raising does not prevent the remaining
        subscriptions, the engine or the stores from closing; the first
        error is re-raised once cleanup completes.
        """
        if self._closed:
            return
        self._closed = True
        first_error: Optional[BaseException] = None
        for subscription in self._subscriptions.values():
            try:
                subscription.close_sinks()
            except BaseException as exc:  # noqa: BLE001 - must keep closing
                if first_error is None:
                    first_error = exc
        self.engine.close()
        if self._store is not None:
            self._store.close()
        if first_error is not None:
            raise first_error

    def __enter__(self) -> "Broker":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"<Broker engine={self.engine_name!r} "
            f"subscriptions={len(self._subscriptions)}>"
        )
