"""XSCL — the XML Stream Conjunctive Language (paper Section 2).

XSCL adds two join operators (``JOIN`` and ``FOLLOWED BY``) to the XPath
fragment supported by existing XML pub/sub systems, making *inter-document*
queries expressible.  This package provides the AST, a parser for the
textual form used in the paper (Table 2), and the normalization steps the
Join Processor assumes (value-join normal form, canonical variable names).
"""

from repro.xscl.errors import XsclSyntaxError, XsclSemanticsError
from repro.xscl.ast import (
    JoinOperator,
    ValueJoinPredicate,
    JoinSpec,
    QueryBlock,
    XsclQuery,
    INFINITE_WINDOW,
)
from repro.xscl.parser import parse_query, parse_block
from repro.xscl.normalize import (
    VariableCatalog,
    canonicalize_query,
    check_value_join_normal_form,
)
from repro.xscl.render import render_query, render_block

__all__ = [
    "XsclSyntaxError",
    "XsclSemanticsError",
    "JoinOperator",
    "ValueJoinPredicate",
    "JoinSpec",
    "QueryBlock",
    "XsclQuery",
    "INFINITE_WINDOW",
    "parse_query",
    "parse_block",
    "VariableCatalog",
    "canonicalize_query",
    "check_value_join_normal_form",
    "render_query",
    "render_block",
]
