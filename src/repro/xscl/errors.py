"""Errors raised by the XSCL front end."""


class XsclSyntaxError(ValueError):
    """The query text cannot be parsed."""


class XsclSemanticsError(ValueError):
    """The query parses but violates an XSCL restriction.

    Examples: a join predicate referring to an unbound variable, or a
    predicate that is not a value join between the two query blocks.
    """
