"""Query normalization: value-join normal form and canonical variable names.

The Join Processor relies on two assumptions stated in Section 2 of the
paper (both without loss of generality, achievable by rewriting at query
insertion time):

1. *Value-join normal form* — the FOLLOWED BY / JOIN predicate is a
   conjunction of equality comparisons between one variable of the left
   block and one variable of the right block.
2. *Canonical variables* — two variables with exactly the same definition
   (same stream, same absolute path) carry the same name, in the same query
   or across queries.  This is what lets witness relations be shared.

:class:`VariableCatalog` implements assumption 2; the check/rewrite helpers
implement assumption 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.xscl.ast import JoinSpec, QueryBlock, ValueJoinPredicate, XsclQuery
from repro.xscl.errors import XsclSemanticsError


@dataclass
class VariableCatalog:
    """Maps variable *definitions* to canonical variable names.

    A definition is ``(stream, absolute path)``.  The first name registered
    for a definition becomes the canonical one; later variables with the
    same definition are renamed to it.
    """

    _by_definition: dict[tuple[str, str], str] = field(default_factory=dict)
    _definitions: dict[str, tuple[str, str]] = field(default_factory=dict)

    def canonical_name(self, definition: tuple[str, str], preferred: str) -> str:
        """Return the canonical variable name for ``definition``.

        Registers ``preferred`` as the canonical name when the definition is
        new.  If ``preferred`` is already in use for a *different*
        definition, a fresh derived name is generated instead.
        """
        existing = self._by_definition.get(definition)
        if existing is not None:
            return existing
        name = preferred
        suffix = 1
        while name in self._definitions and self._definitions[name] != definition:
            suffix += 1
            name = f"{preferred}_{suffix}"
        self._by_definition[definition] = name
        self._definitions[name] = definition
        return name

    def definition_of(self, name: str) -> Optional[tuple[str, str]]:
        """The definition registered under a canonical name, if any."""
        return self._definitions.get(name)

    def entries(self) -> list[tuple[str, str, str]]:
        """All registrations as ``(name, stream, path)``, in registration order.

        The persistence view: canonical names are assigned in registration
        order (collisions get ``_2``-style suffixes), so the order is part
        of the catalog's identity and must survive externalization.
        """
        return [
            (name, stream, path)
            for (stream, path), name in self._by_definition.items()
        ]

    def restore(self, entries: "list[tuple[str, str, str]]") -> None:
        """Re-register persisted ``(name, stream, path)`` entries verbatim.

        Used by crash recovery *before* any query is (re-)canonicalized:
        replaying only the surviving subscriptions would re-derive names in
        a different registration order than the crashed session, and the
        names frozen into the persisted join-state rows would no longer
        resolve.  Restoring the catalog verbatim pins every name first.
        """
        for name, stream, path in entries:
            self._by_definition[(stream, path)] = name
            self._definitions[name] = (stream, path)


def check_value_join_normal_form(query: XsclQuery) -> None:
    """Validate (and minimally repair in-place is *not* done here) normal form.

    Raises :class:`XsclSemanticsError` when a predicate variable is not
    bound, or when both variables of a predicate come from the same block.
    """
    if not query.is_join_query:
        return
    left_vars = set(query.left.variables())
    right_vars = set(query.right.variables())
    for pred in query.join.predicates:
        in_left = pred.left_var in left_vars
        in_right = pred.right_var in right_vars
        swapped = pred.left_var in right_vars and pred.right_var in left_vars
        if not (in_left and in_right) and not swapped:
            raise XsclSemanticsError(
                f"predicate {pred} is not a value join between the two query blocks "
                f"(left block binds {sorted(left_vars)}, right block binds {sorted(right_vars)})"
            )


def to_value_join_normal_form(query: XsclQuery) -> XsclQuery:
    """Return an equivalent query whose predicates all read ``left = right``.

    Predicates written "backwards" (right-block variable first) are swapped.
    For self-joins where a variable name is bound in *both* blocks the
    original orientation is kept.
    """
    if not query.is_join_query:
        return query
    left_vars = set(query.left.variables())
    right_vars = set(query.right.variables())
    fixed: list[ValueJoinPredicate] = []
    for pred in query.join.predicates:
        lv, rv = pred.left_var, pred.right_var
        if lv in left_vars and rv in right_vars:
            fixed.append(pred)
        elif lv in right_vars and rv in left_vars:
            fixed.append(ValueJoinPredicate(rv, lv))
        else:
            raise XsclSemanticsError(
                f"predicate {pred} refers to variables not bound by the query blocks"
            )
    new_join = JoinSpec(
        operator=query.join.operator,
        predicates=tuple(fixed),
        window=query.join.window,
    )
    out = XsclQuery(
        left=query.left,
        right=query.right,
        join=new_join,
        select=query.select,
        publish=query.publish,
        name=query.name,
        text=query.text,
    )
    return out


def canonicalize_query(query: XsclQuery, catalog: VariableCatalog) -> XsclQuery:
    """Rename the query's variables to their canonical (definition-based) names.

    Two variables — in this query or any previously canonicalized one — that
    share a definition end up with the same name, enabling witness sharing
    across queries (paper Section 2, third assumption).
    """
    mapping: dict[str, str] = {}
    for block in (query.left, query.right):
        if block is None:
            continue
        for var in block.variables():
            definition = block.pattern.definition_key(var)
            canonical = catalog.canonical_name(definition, var)
            existing = mapping.get(var)
            if existing is not None and existing != canonical:
                # The same surface name is used for two different definitions
                # within one query (e.g. x5 and x5' collapsing); keep both by
                # letting the later one win only for its own block.  This is
                # resolved by renaming per-block below.
                raise XsclSemanticsError(
                    f"variable {var!r} is bound to two different definitions in one query; "
                    "rename one of the occurrences"
                )
            mapping[var] = canonical
    renamed = query.rename_variables(mapping)
    check_value_join_normal_form(renamed)
    return to_value_join_normal_form(renamed)
