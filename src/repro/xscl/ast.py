"""AST for XSCL queries.

An XSCL query has three clauses — SELECT, FROM, PUBLISH — of which the FROM
clause carries the join structure: two XPath *query blocks* connected by a
``JOIN`` or ``FOLLOWED BY`` operator with an equality predicate and a time
window (paper Section 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.xpath.pattern import PatternNode, VariableTreePattern

#: Window constant meaning "no time constraint" (the RSS experiment of
#: Section 6.3 assigns a window of infinity to every query).
INFINITE_WINDOW = float("inf")


class JoinOperator(enum.Enum):
    """The two XSCL join operators."""

    #: Symmetric time-window join: events within ``window`` of each other.
    JOIN = "JOIN"
    #: Sequencing operator: the left event must precede the right event.
    FOLLOWED_BY = "FOLLOWED BY"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ValueJoinPredicate:
    """A single equality predicate ``left_var = right_var``.

    ``left_var`` is bound in the left query block and ``right_var`` in the
    right query block (value-join normal form).  Equality is on XPath string
    values.
    """

    left_var: str
    right_var: str

    def __str__(self) -> str:
        return f"{self.left_var}={self.right_var}"


@dataclass(frozen=True)
class JoinSpec:
    """The parameters of a JOIN / FOLLOWED BY operator."""

    operator: JoinOperator
    predicates: tuple[ValueJoinPredicate, ...]
    window: float

    def __post_init__(self) -> None:
        if self.window < 0:
            raise ValueError("window length must be non-negative")
        if not self.predicates:
            raise ValueError("a join operator needs at least one value-join predicate")

    def __str__(self) -> str:
        preds = " AND ".join(str(p) for p in self.predicates)
        window = "INF" if self.window == INFINITE_WINDOW else str(self.window)
        return f"{self.operator.value}{{{preds}, {window}}}"


@dataclass
class QueryBlock:
    """One XPath query block of the FROM clause.

    A query block is a stream name plus a variable tree pattern; it matches
    single documents on that stream.
    """

    pattern: VariableTreePattern

    @property
    def stream(self) -> str:
        """The stream the block reads from."""
        return self.pattern.stream

    def variables(self) -> list[str]:
        """Variables bound in this block."""
        return self.pattern.variables()

    @property
    def root_variable(self) -> Optional[str]:
        """The variable bound to the block's root pattern node (if any)."""
        return self.pattern.root.variable

    def __repr__(self) -> str:
        return f"QueryBlock({self.stream}: {self.variables()})"


@dataclass
class XsclQuery:
    """A complete XSCL query.

    Attributes
    ----------
    left, right:
        The two query blocks of the FROM clause.  ``right`` is ``None`` for
        simple single-block (filter) queries such as ``SELECT * FROM blog``.
    join:
        The join operator specification; ``None`` for single-block queries.
    select:
        The SELECT clause text; ``"*"`` (the default) produces the paper's
        default output construction.
    publish:
        Optional name of the query's output stream (PUBLISH clause).
    name:
        Optional user-facing query name; engines assign the definitive query
        id at registration.
    text:
        The original query text when parsed from a string.
    """

    left: QueryBlock
    right: Optional[QueryBlock] = None
    join: Optional[JoinSpec] = None
    select: str = "*"
    publish: Optional[str] = None
    name: Optional[str] = None
    text: Optional[str] = None

    def __post_init__(self) -> None:
        if (self.right is None) != (self.join is None):
            raise ValueError("a join spec requires a right block, and vice versa")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def is_join_query(self) -> bool:
        """True for inter-document queries (two blocks and a join operator)."""
        return self.join is not None

    def all_variables(self) -> list[str]:
        """Variables bound in both blocks (duplicates removed, order preserved)."""
        out: list[str] = []
        seen: set[str] = set()
        for block in (self.left, self.right):
            if block is None:
                continue
            for var in block.variables():
                if var not in seen:
                    seen.add(var)
                    out.append(var)
        return out

    def left_join_variables(self) -> list[str]:
        """Left-block variables appearing in the join predicate, in predicate order."""
        if self.join is None:
            return []
        out = []
        for pred in self.join.predicates:
            if pred.left_var not in out:
                out.append(pred.left_var)
        return out

    def right_join_variables(self) -> list[str]:
        """Right-block variables appearing in the join predicate, in predicate order."""
        if self.join is None:
            return []
        out = []
        for pred in self.join.predicates:
            if pred.right_var not in out:
                out.append(pred.right_var)
        return out

    def rename_variables(self, mapping: dict[str, str]) -> "XsclQuery":
        """Return a copy of the query with variables renamed per ``mapping``.

        Variables not present in ``mapping`` keep their names.  Used by the
        canonicalization step (:mod:`repro.xscl.normalize`) on every
        subscribe, so the pattern copy is structural: fresh
        :class:`~repro.xpath.pattern.PatternNode` objects (the mutable
        layer) sharing the frozen :class:`~repro.xpath.ast.LocationPath`
        objects, instead of a ``copy.deepcopy`` that clones every step and
        node test of every path.
        """

        def copy_node(node: PatternNode) -> PatternNode:
            variable = node.variable
            if variable is not None:
                variable = mapping.get(variable, variable)
            return PatternNode(
                variable, node.path, [copy_node(child) for child in node.children]
            )

        def rename_block(block: Optional[QueryBlock]) -> Optional[QueryBlock]:
            if block is None:
                return None
            pattern = block.pattern
            return QueryBlock(
                pattern=VariableTreePattern(
                    root=copy_node(pattern.root), stream=pattern.stream
                )
            )

        new_join = None
        if self.join is not None:
            new_join = JoinSpec(
                operator=self.join.operator,
                predicates=tuple(
                    ValueJoinPredicate(
                        mapping.get(p.left_var, p.left_var),
                        mapping.get(p.right_var, p.right_var),
                    )
                    for p in self.join.predicates
                ),
                window=self.join.window,
            )
        return replace(
            self,
            left=rename_block(self.left),
            right=rename_block(self.right),
            join=new_join,
        )

    def __repr__(self) -> str:
        if self.join is None:
            return f"<XsclQuery {self.name or ''} single-block {self.left!r}>"
        return (
            f"<XsclQuery {self.name or ''} {self.left!r} "
            f"{self.join.operator.value} {self.right!r} "
            f"({len(self.join.predicates)} value joins, window={self.join.window})>"
        )


def rename_variables_deepcopy(query: XsclQuery, mapping: dict[str, str]) -> XsclQuery:
    """The historical deepcopy-based rename, kept as the benchmark baseline.

    Identical result to :meth:`XsclQuery.rename_variables`; it clones the
    frozen path layer too, which dominated subscribe latency.
    """
    import copy

    def rename_block(block: Optional[QueryBlock]) -> Optional[QueryBlock]:
        if block is None:
            return None
        pattern = copy.deepcopy(block.pattern)
        for node in pattern.iter_nodes():
            if node.variable is not None:
                node.variable = mapping.get(node.variable, node.variable)
        return QueryBlock(pattern=pattern)

    new_join = None
    if query.join is not None:
        new_join = JoinSpec(
            operator=query.join.operator,
            predicates=tuple(
                ValueJoinPredicate(
                    mapping.get(p.left_var, p.left_var),
                    mapping.get(p.right_var, p.right_var),
                )
                for p in query.join.predicates
            ),
            window=query.join.window,
        )
    return replace(
        query,
        left=rename_block(query.left),
        right=rename_block(query.right),
        join=new_join,
    )
