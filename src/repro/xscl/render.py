"""Render XSCL ASTs back to query text.

Programmatically constructed queries (e.g. from the workload generators) can
be turned into the same textual form the parser accepts, which is useful for
logging, for the examples, and for persisting generated workloads.  The
round trip ``parse_query(render_query(q))`` preserves query semantics.
"""

from __future__ import annotations

from repro.xpath.pattern import PatternNode, VariableTreePattern
from repro.xscl.ast import INFINITE_WINDOW, QueryBlock, XsclQuery


def _render_pattern_node(node: PatternNode, is_root: bool) -> str:
    text = str(node.path)
    if node.variable is not None:
        text += f"->{node.variable}"
    for child in node.children:
        text += f"[{_render_pattern_node(child, is_root=False)}]"
    return text


def render_block(block: QueryBlock) -> str:
    """Render one query block, e.g. ``S//book->x1[.//author->x2]``."""
    pattern: VariableTreePattern = block.pattern
    return f"{pattern.stream}{_render_pattern_node(pattern.root, is_root=True)}"


def render_window(window: float) -> str:
    """Render a window length (``INF`` for unbounded windows)."""
    if window == INFINITE_WINDOW:
        return "INF"
    if float(window).is_integer():
        return str(int(window))
    return str(window)


def render_query(query: XsclQuery) -> str:
    """Render a complete XSCL query as parseable text."""
    parts: list[str] = []
    if query.select != "*":
        parts.append(f"SELECT {query.select} FROM")
    parts.append(render_block(query.left))
    if query.is_join_query:
        predicates = " AND ".join(str(p) for p in query.join.predicates)
        parts.append(
            f"{query.join.operator.value}{{{predicates}, {render_window(query.join.window)}}}"
        )
        parts.append(render_block(query.right))
    if query.publish:
        parts.append(f"PUBLISH {query.publish}")
    return " ".join(parts)
