"""Parser for the textual form of XSCL queries.

The concrete syntax follows the paper's Table 2, e.g.::

    S//book->x1[.//author->x2][.//title->x3]
    FOLLOWED BY{x2=x5 AND x3=x6, 3600}
    S//blog->x4[.//author->x5][.//title->x6]

Optionally wrapped in the three-clause form::

    SELECT * FROM <join expression> PUBLISH matches

Windows are numeric (time units), ``INF``/``INFINITY``/``*`` for an
unbounded window, or a symbolic name resolved through the
``window_symbols`` mapping (so the paper's ``T1`` placeholders stay usable
in examples and tests).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.xpath.ast import Axis, LocationPath, Step
from repro.xpath.pattern import PatternNode, VariableTreePattern
from repro.xscl.ast import (
    INFINITE_WINDOW,
    JoinOperator,
    JoinSpec,
    QueryBlock,
    ValueJoinPredicate,
    XsclQuery,
)
from repro.xscl.errors import XsclSyntaxError

# Names may contain internal hyphens (e.g. RSS tag names) but must not
# swallow the '-' of a '->' variable-binding arrow.
_NAME_RE = re.compile(r"[A-Za-z_][\w.]*(?:-[\w.]+)*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?")
_KEYWORDS = {"FOLLOWED", "JOIN", "PUBLISH", "SELECT", "FROM", "AND", "BY"}


class _Cursor:
    """A tiny scanning cursor over the query text."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def error(self, message: str) -> XsclSyntaxError:
        snippet = self.text[self.pos : self.pos + 20]
        return XsclSyntaxError(f"{message} at position {self.pos}: ...{snippet!r}")

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)

    def peek(self, literal: str) -> bool:
        return self.text.startswith(literal, self.pos)

    def take(self, literal: str) -> bool:
        if self.peek(literal):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str) -> None:
        if not self.take(literal):
            raise self.error(f"expected {literal!r}")

    def peek_word(self) -> Optional[str]:
        self.skip_ws()
        m = _NAME_RE.match(self.text, self.pos)
        return m.group(0) if m else None

    def take_word(self, word: str) -> bool:
        """Consume ``word`` (case-insensitive) when it is the next whole word."""
        self.skip_ws()
        m = _NAME_RE.match(self.text, self.pos)
        if m and m.group(0).upper() == word.upper():
            self.pos = m.end()
            return True
        return False

    def read_name(self) -> str:
        m = _NAME_RE.match(self.text, self.pos)
        if not m:
            raise self.error("expected a name")
        self.pos = m.end()
        return m.group(0)


# --------------------------------------------------------------------------- #
# block / pattern parsing
# --------------------------------------------------------------------------- #
def _parse_steps(cur: _Cursor) -> list[Step]:
    """Parse one or more ``/name`` / ``//name`` steps (no whitespace allowed)."""
    steps: list[Step] = []
    while True:
        if cur.peek("//"):
            cur.pos += 2
            axis = Axis.DESCENDANT
        elif cur.peek("/"):
            cur.pos += 1
            axis = Axis.CHILD
        else:
            break
        if cur.peek("*"):
            cur.pos += 1
            name = "*"
        else:
            name = cur.read_name()
        steps.append(Step(axis, name))
    if not steps:
        raise cur.error("expected a path step ('/' or '//')")
    return steps


def _parse_pattern_chain(cur: _Cursor, absolute: bool) -> PatternNode:
    """Parse ``steps (->var)? predicate* (more steps ...)*`` into a pattern chain.

    Returns the chain's top node; deeper segments become single children.
    """
    steps = _parse_steps(cur)
    variable: Optional[str] = None
    if cur.take("->"):
        variable = cur.read_name()
    node = PatternNode(variable, LocationPath(tuple(steps), absolute=absolute))

    # Predicates: [ .//path->var ... ]
    while cur.peek("["):
        cur.pos += 1
        if not cur.take("."):
            raise cur.error("predicate paths must be relative (start with '.')")
        child = _parse_pattern_chain(cur, absolute=False)
        cur.expect("]")
        node.children.append(child)

    # Continuation of the main path after a binding or predicates.
    if cur.peek("/"):
        deeper = _parse_pattern_chain(cur, absolute=False)
        node.children.append(deeper)
    return node


def parse_block(cur_or_text, window_symbols=None) -> QueryBlock:
    """Parse a single query block such as ``S//book->x1[.//author->x2]``."""
    if isinstance(cur_or_text, str):
        cur = _Cursor(cur_or_text)
        cur.skip_ws()
        block = _parse_block(cur)
        if not cur.at_end():
            raise cur.error("trailing text after query block")
        return block
    return _parse_block(cur_or_text)


def _parse_block(cur: _Cursor) -> QueryBlock:
    cur.skip_ws()
    stream = cur.read_name()
    if stream.upper() in _KEYWORDS:
        raise cur.error(f"expected a stream name, found keyword {stream!r}")
    root = _parse_pattern_chain(cur, absolute=True)
    pattern = VariableTreePattern(root=root, stream=stream)
    return QueryBlock(pattern=pattern)


# --------------------------------------------------------------------------- #
# join spec parsing
# --------------------------------------------------------------------------- #
def _parse_window(cur: _Cursor, window_symbols: Optional[dict[str, float]]) -> float:
    cur.skip_ws()
    if cur.take("*"):
        return INFINITE_WINDOW
    m = _NUMBER_RE.match(cur.text, cur.pos)
    if m:
        cur.pos = m.end()
        return float(m.group(0))
    word = cur.read_name()
    if word.upper() in ("INF", "INFINITY"):
        return INFINITE_WINDOW
    if window_symbols and word in window_symbols:
        return float(window_symbols[word])
    raise cur.error(
        f"unknown window symbol {word!r} (pass window_symbols={{{word!r}: <seconds>}})"
    )


def _parse_join_spec(
    cur: _Cursor, operator: JoinOperator, window_symbols: Optional[dict[str, float]]
) -> JoinSpec:
    cur.skip_ws()
    cur.expect("{")
    predicates: list[ValueJoinPredicate] = []
    while True:
        cur.skip_ws()
        left = cur.read_name()
        cur.skip_ws()
        cur.expect("=")
        cur.skip_ws()
        right = cur.read_name()
        predicates.append(ValueJoinPredicate(left, right))
        if cur.take_word("AND"):
            continue
        break
    cur.skip_ws()
    cur.expect(",")
    window = _parse_window(cur, window_symbols)
    cur.skip_ws()
    cur.expect("}")
    return JoinSpec(operator=operator, predicates=tuple(predicates), window=window)


# --------------------------------------------------------------------------- #
# query parsing
# --------------------------------------------------------------------------- #
def parse_query(
    text: str,
    window_symbols: Optional[dict[str, float]] = None,
    name: Optional[str] = None,
) -> XsclQuery:
    """Parse a complete XSCL query.

    Parameters
    ----------
    text:
        The query text (see module docstring for the grammar).
    window_symbols:
        Optional mapping for symbolic window names (``{"T1": 3600.0}``).
    name:
        Optional query name recorded on the resulting AST.
    """
    cur = _Cursor(text)
    cur.skip_ws()

    select = "*"
    if cur.take_word("SELECT"):
        cur.skip_ws()
        # The select spec is everything up to the FROM keyword.
        m = re.search(r"\bFROM\b", cur.text[cur.pos:], flags=re.IGNORECASE)
        if not m:
            raise cur.error("SELECT clause requires a FROM clause")
        select = cur.text[cur.pos : cur.pos + m.start()].strip() or "*"
        cur.pos += m.end()

    left = _parse_block(cur)

    right = None
    join = None
    cur.skip_ws()
    if cur.take_word("FOLLOWED"):
        if not cur.take_word("BY"):
            raise cur.error("expected 'BY' after 'FOLLOWED'")
        join = _parse_join_spec(cur, JoinOperator.FOLLOWED_BY, window_symbols)
        right = _parse_block(cur)
    elif cur.peek_word() and cur.peek_word().upper() == "JOIN":
        cur.take_word("JOIN")
        join = _parse_join_spec(cur, JoinOperator.JOIN, window_symbols)
        right = _parse_block(cur)

    publish = None
    if cur.take_word("PUBLISH"):
        cur.skip_ws()
        publish = cur.read_name()

    if not cur.at_end():
        raise cur.error("trailing text after query")

    return XsclQuery(
        left=left,
        right=right,
        join=join,
        select=select,
        publish=publish,
        name=name,
        text=text,
    )
