"""Observability layer: counters, gauges, latency histograms, delivery lag.

Enabled with ``RuntimeConfig(metrics=True)`` (or the ``REPRO_METRICS=1``
replay override); disabled, the hot path pays a single attribute check.
See :mod:`repro.metrics.registry` for the primitives and
``broker.stats()["metrics"]`` for the merged runtime snapshot.
"""

from repro.metrics.registry import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    snapshot_delta,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "merge_snapshots",
    "snapshot_delta",
]
