"""Lightweight runtime metrics: counters, gauges and fixed-bucket histograms.

The observability layer behind ``RuntimeConfig(metrics=True)``.  Every
primitive is a plain Python object with O(1) record cost and no locks (the
brokers record from the delivery thread; worker processes own independent
registries whose snapshots are merged broker-side):

* :class:`Counter` / :class:`Gauge` — monotone and instantaneous values.
* :class:`Histogram` — a fixed-bucket latency histogram (log-spaced bounds,
  microseconds to minutes) reporting p50/p95/p99 and max by bucket
  interpolation.  Snapshots carry the raw bucket counts, so per-shard and
  per-process snapshots merge exactly (:func:`merge_snapshots`).
* :class:`MetricsRegistry` — the named collection threaded through the
  engines and brokers, with a :meth:`~MetricsRegistry.timer` context
  manager generalizing :class:`repro.core.costs.CostBreakdown` (which can
  mirror its per-phase measurements into a registry, see
  :meth:`repro.core.costs.CostBreakdown.attach_metrics`) and compact
  per-subscription delivery-lag accounting
  (:meth:`~MetricsRegistry.record_delivery_lag`) that stays cheap at 10⁵+
  live subscriptions.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from time import perf_counter
from typing import Iterable, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BOUNDS",
    "merge_snapshots",
    "snapshot_delta",
]


def _latency_bounds() -> tuple[float, ...]:
    """Log-spaced bucket upper bounds: 1µs .. 100s, four buckets per decade."""
    bounds = []
    for exponent in range(-6, 2):
        for mantissa in (1.0, 1.778, 3.162, 5.623):
            bounds.append(round(mantissa * 10.0**exponent, 12))
    bounds.append(100.0)
    return tuple(bounds)


#: Default histogram bounds (seconds): every latency histogram in the stack
#: uses these, so snapshots from different processes merge bucket-for-bucket.
DEFAULT_LATENCY_BOUNDS = _latency_bounds()


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.value}>"


class Gauge:
    """An instantaneous value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.value}>"


class Histogram:
    """A fixed-bucket histogram of non-negative samples (seconds by default).

    ``bounds`` are the bucket *upper* bounds; samples above the last bound
    land in an overflow bucket.  Quantiles are estimated by linear
    interpolation inside the covering bucket and clamped to the observed
    ``[min, max]`` range, so they are exact at the tails that matter
    (``max`` is tracked directly) and within one bucket's resolution
    (~±30% with the default four-buckets-per-decade bounds) elsewhere.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def percentile(self, q: float) -> float:
        """The estimated ``q``-quantile (``q`` in [0, 1]) of the samples."""
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[i - 1] if i > 0 else 0.0
                upper = self.bounds[i] if i < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - unreachable (rank <= count)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> "Histogram":
        """Accumulate another histogram (same bounds) into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        return self

    def snapshot(self) -> dict:
        """A JSON-safe summary carrying the raw (nonzero) bucket counts.

        ``buckets`` maps bucket index → count, so snapshots taken in
        different processes (same default bounds) merge exactly via
        :func:`merge_snapshots`; quantiles are always recomputed from the
        merged buckets, never averaged.
        """
        return {
            "count": self.count,
            "sum_s": self.total,
            "mean_ms": self.mean * 1000.0,
            "min_ms": (self.min if self.count else 0.0) * 1000.0,
            "max_ms": self.max * 1000.0,
            "p50_ms": self.percentile(0.50) * 1000.0,
            "p95_ms": self.percentile(0.95) * 1000.0,
            "p99_ms": self.percentile(0.99) * 1000.0,
            "buckets": {str(i): c for i, c in enumerate(self.counts) if c},
        }

    @classmethod
    def from_snapshot(cls, snap: dict, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS) -> "Histogram":
        """Rebuild a histogram from a :meth:`snapshot` (for merging)."""
        hist = cls(bounds)
        for index, count in snap.get("buckets", {}).items():
            hist.counts[int(index)] += count
        hist.count = snap.get("count", 0)
        hist.total = snap.get("sum_s", 0.0)
        if hist.count:
            hist.min = snap.get("min_ms", 0.0) / 1000.0
            hist.max = snap.get("max_ms", 0.0) / 1000.0
        return hist

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Histogram n={self.count} p50={self.percentile(0.5) * 1e3:.3f}ms "
            f"p99={self.percentile(0.99) * 1e3:.3f}ms max={self.max * 1e3:.3f}ms>"
        )


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    One registry lives on each broker (publish latency, delivery lag,
    delivery counters) and one on each engine (per-stage timers — in the
    process runtime these live in the worker and are fetched as snapshots);
    :meth:`snapshot` output from any number of registries merges through
    :func:`merge_snapshots`.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        # subscription id -> [deliveries, total lag seconds, max lag seconds]
        self._subscription_lag: dict[str, list] = {}

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter()
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self.gauges.get(name)
        if gauge is None:
            gauge = self.gauges[name] = Gauge()
        return gauge

    def histogram(self, name: str, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram(bounds)
        return histogram

    @contextmanager
    def timer(self, name: str):
        """Time a block of code into the histogram ``name`` (seconds)."""
        start = perf_counter()
        try:
            yield
        finally:
            self.histogram(name).record(perf_counter() - start)

    # ------------------------------------------------------------------ #
    # delivery lag
    # ------------------------------------------------------------------ #
    def record_delivery_lag(self, subscription_id: str, seconds: float) -> None:
        """Record one publish→sink-delivery lag sample for a subscription.

        Feeds the global ``delivery_lag`` histogram (quantiles) plus a
        compact per-subscription ``[count, total, max]`` triple — full
        per-subscription histograms would not stay cheap at 10⁵+ live
        subscriptions.
        """
        self.histogram("delivery_lag").record(seconds)
        slot = self._subscription_lag.get(subscription_id)
        if slot is None:
            self._subscription_lag[subscription_id] = [1, seconds, seconds]
            return
        slot[0] += 1
        slot[1] += seconds
        if seconds > slot[2]:
            slot[2] = seconds

    def subscription_lag(self, subscription_id: str) -> Optional[dict]:
        """Lag summary of one subscription (``None`` before any delivery)."""
        slot = self._subscription_lag.get(subscription_id)
        if slot is None:
            return None
        count, total, worst = slot
        return {
            "count": count,
            "mean_ms": total / count * 1000.0,
            "max_ms": worst * 1000.0,
        }

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def snapshot(self, worst_subscriptions: int = 10) -> dict:
        """A JSON-safe snapshot of every metric in this registry.

        ``subscription_lag`` reports only the ``worst_subscriptions``
        highest-max-lag subscriptions (plus the total tracked count), so a
        million-subscription registry snapshots in bounded space.
        """
        worst = sorted(
            self._subscription_lag.items(), key=lambda kv: kv[1][2], reverse=True
        )[: max(worst_subscriptions, 0)]
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: h.snapshot() for name, h in self.histograms.items()
            },
            "subscription_lag": {
                "tracked": len(self._subscription_lag),
                "worst": {
                    sid: {
                        "count": slot[0],
                        "mean_ms": slot[1] / slot[0] * 1000.0,
                        "max_ms": slot[2] * 1000.0,
                    }
                    for sid, slot in worst
                },
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self.counters)} "
            f"gauges={len(self.gauges)} histograms={len(self.histograms)}>"
        )


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Merge registry snapshots (shards, workers, broker) into one.

    Counters sum, gauges sum (every gauge in the stack is a size, so the
    across-shards total is the meaningful aggregate), histograms merge
    bucket-for-bucket and recompute their quantiles, and the worst-lag
    subscription lists union (re-trimmed to the longest input list).
    ``None`` entries (metrics disabled somewhere) are skipped.
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, Histogram] = {}
    lag_tracked = 0
    lag_worst: dict[str, dict] = {}
    worst_limit = 0
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0.0) + value
        for name, hist_snap in snap.get("histograms", {}).items():
            merged = histograms.get(name)
            if merged is None:
                histograms[name] = Histogram.from_snapshot(hist_snap)
            else:
                merged.merge(Histogram.from_snapshot(hist_snap))
        lag = snap.get("subscription_lag")
        if lag:
            lag_tracked += lag.get("tracked", 0)
            worst = lag.get("worst", {})
            worst_limit = max(worst_limit, len(worst))
            # Subscriptions are owned by exactly one broker/shard, so the
            # per-sid entries never collide; keep the worse one defensively.
            for sid, entry in worst.items():
                seen = lag_worst.get(sid)
                if seen is None or entry["max_ms"] > seen["max_ms"]:
                    lag_worst[sid] = entry
    trimmed = dict(
        sorted(lag_worst.items(), key=lambda kv: kv[1]["max_ms"], reverse=True)[
            :worst_limit
        ]
    )
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": {name: h.snapshot() for name, h in histograms.items()},
        "subscription_lag": {"tracked": lag_tracked, "worst": trimmed},
    }


def snapshot_delta(prev: Optional[dict], cur: dict) -> dict:
    """The metrics accumulated between two snapshots (``cur`` minus ``prev``).

    Counters subtract, and histograms subtract bucket-for-bucket with the
    quantiles recomputed from the difference buckets — this is how the
    stress harness reports per-phase p50/p95/p99 from one cumulative
    registry.  ``min_ms``/``max_ms`` cannot be un-merged and are carried
    from ``cur`` (a conservative envelope over the interval).  Gauges and
    the subscription-lag summary are instantaneous views and carried from
    ``cur`` unchanged.  ``prev=None`` returns ``cur`` as-is.
    """
    if not prev:
        return cur
    counters = {
        name: value - prev.get("counters", {}).get(name, 0)
        for name, value in cur.get("counters", {}).items()
    }
    histograms: dict[str, dict] = {}
    prev_hists = prev.get("histograms", {})
    for name, cur_snap in cur.get("histograms", {}).items():
        hist = Histogram.from_snapshot(cur_snap)
        prev_snap = prev_hists.get(name)
        if prev_snap:
            before = Histogram.from_snapshot(prev_snap)
            for i, c in enumerate(before.counts):
                hist.counts[i] -= c
            hist.count -= before.count
            hist.total -= before.total
        histograms[name] = hist.snapshot()
    return {
        "counters": counters,
        "gauges": dict(cur.get("gauges", {})),
        "histograms": histograms,
        "subscription_lag": cur.get("subscription_lag", {}),
    }
