"""The unified runtime configuration: one object for every knob.

Three PRs of growth left the broker front end behind a sprawl of ~10
keyword arguments copy-pasted across :func:`~repro.core.engine.make_engine`,
both engines, :class:`~repro.pubsub.Broker` and
:class:`~repro.runtime.ShardedBroker`.  :class:`RuntimeConfig` replaces that
sprawl with a single frozen dataclass — one validation point, one place for
future PRs to add a knob — threaded through every layer of the stack:

.. code-block:: python

    from repro import RuntimeConfig, open_broker

    config = RuntimeConfig(engine="mmqjp", shards=4, executor="threads")
    with open_broker(config) as broker:
        broker.subscribe(...)

The old per-constructor keyword arguments still work everywhere but emit a
:class:`DeprecationWarning`; they are coerced into a ``RuntimeConfig`` by
:func:`coerce_config`, so legacy call sites construct *identical* behavior.

Presets capture the two configurations the evaluation section uses
constantly: :meth:`RuntimeConfig.throughput` (sharded, thread-pooled, no
output construction) and :meth:`RuntimeConfig.ablation` (every acceleration
knob off — the plan-per-call, visit-every-template, unindexed baseline).
"""

from __future__ import annotations

import dataclasses
import os
import warnings
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

__all__ = [
    "ENGINES",
    "INDEXING_MODES",
    "PARTITIONERS",
    "EXECUTORS",
    "STORAGE_BACKENDS",
    "DURABILITY_MODES",
    "INGEST_MODES",
    "RuntimeConfig",
    "coerce_config",
    "metrics_enabled",
    "resolve_ingest",
]

#: Engine selection keywords (canonical definition; re-exported by
#: :mod:`repro.core.engine` for backward compatibility).
ENGINES = ("mmqjp", "mmqjp-vm", "sequential")

#: Join-state index-maintenance modes (must match
#: :data:`repro.relational.database.INDEXING_MODES`; asserted by the tests).
INDEXING_MODES = ("eager", "lazy", "off")

#: Built-in partitioner keywords (must match
#: :data:`repro.runtime.partition.PARTITIONERS`).
PARTITIONERS = ("hash", "least-loaded")

#: Built-in shard-executor keywords (must match
#: :data:`repro.runtime.executor.EXECUTORS`).  ``"processes"`` runs each
#: shard engine in a long-lived worker process (true CPU parallelism for
#: the pure-Python engines); the shard engines are then constructed
#: in-worker from the pickled config, so the config must be picklable.
EXECUTORS = ("serial", "threads", "processes")

#: Document-ingest modes. ``"stream"`` (default) parses published XML text
#: in a single event-driven pass and — when the engine keeps no document
#: state — feeds Stage 1 directly from the scan without building a node
#: tree.  ``"tree"`` always materializes the full :class:`XmlNode` tree
#: first (the pre-fast-path behavior, kept for ablation).  Match sets are
#: identical either way.
INGEST_MODES = ("stream", "tree")

#: State-storage backends (canonical definition; re-exported by
#: :mod:`repro.storage`).  ``"memory"`` keeps all state in process —
#: byte-for-byte today's behavior; ``"sqlite"`` externalizes join state,
#: subscription registry and documents to per-member SQLite files so a
#: session can be resumed after a crash (``open_broker(resume_from=...)``).
STORAGE_BACKENDS = ("memory", "sqlite")

#: Durability modes for the ``"sqlite"`` backend: ``"epoch"`` commits every
#: document epoch before the next document starts; ``"relaxed"`` batches
#: commits (write-behind) — a crash may lose the most recent epochs but
#: never tears one.
DURABILITY_MODES = ("epoch", "relaxed")


@dataclass(frozen=True)
class RuntimeConfig:
    """Every runtime knob of the system, validated in one place.

    Attributes
    ----------
    engine:
        ``"mmqjp"`` (default), ``"mmqjp-vm"`` (Section 5 view
        materialization) or ``"sequential"`` (the baseline).
    indexing:
        Join-state index maintenance: ``"eager"`` (default), ``"lazy"``, or
        ``"off"`` (per-call hashing, the ablation baseline).
    plan_cache:
        Evaluate conjunctive queries through compiled, cached plans
        (default).  ``False`` re-plans per call.
    prune_dispatch:
        Skip templates/queries irrelevant to the published document
        (default).  ``False`` visits every registered template/query.
    delta_join:
        Delta-driven Stage-2 evaluation (default): before each conjunctive
        query runs, the state relations are semi-join-reduced to the rows
        reachable from the current document's witness delta, so join cost
        is proportional to delta-connected state rather than total state.
        ``False`` probes the full state relations (the pre-delta behavior,
        kept for ablation and equivalence testing).
    columnar:
        Columnar evaluation (default): the join state carries interned-id
        column vectors behind the row API, and the compiled-plan executor
        plus the delta-reduction passes run as batch kernels over packed
        id vectors (vectorized with ``numpy`` when installed — the
        ``repro[fast]`` extra — pure-``array`` kernels otherwise).
        ``False`` keeps the row-at-a-time path; match sets are identical
        either way.
    auto_prune:
        Prune join state by window horizon on the publish path (effective
        while every registered window is finite).
    auto_timestamp:
        Assign monotonically increasing timestamps to documents arriving
        with timestamp 0.
    store_documents:
        Keep processed documents so output XML can be constructed.
        ``None`` (default) resolves per consumer: the engines and the
        unsharded broker store documents; the sharded broker follows
        ``construct_outputs``.
    construct_outputs:
        Build the output XML document for every join match (slower; disable
        for throughput measurements).
    view_cache_size:
        Size of the ``RL``-slice view cache for ``"mmqjp-vm"``; ``None``
        recomputes the views per document without caching.
    stream_history:
        How many recent documents each stream keeps for inspection.
    shards:
        Number of engine shards; ``> 1`` selects the sharded runtime
        (:func:`repro.open_broker` routes accordingly).
    partitioner:
        ``"hash"`` (default), ``"least-loaded"``, or a
        :class:`~repro.runtime.partition.Partitioner` instance.
    executor:
        ``"serial"`` (default), ``"threads"``, ``"processes"`` (one
        long-lived worker process per shard — true CPU parallelism), or a
        :class:`~repro.runtime.executor.ShardExecutor` instance.
    max_workers:
        Worker cap for the ``"threads"`` and ``"processes"`` executors
        (default: one per shard; fewer workers co-locate several shards
        per thread/process).
    route_dispatch:
        Relevance-aware fan-out routing in the sharded runtime (default):
        the broker maintains a variable→shard-set inverted index and only
        dispatches a document to shards hosting templates it can bind.
        ``False`` replicates every document to every shard (the pre-routing
        behavior, kept for ablation and equivalence testing).
    ingest:
        Document-ingest mode for text publishes: ``"stream"`` (default)
        scans the XML text in one event-driven pass — assigning node ids
        while building, and skipping tree construction entirely when the
        engine keeps no document state — while ``"tree"`` always builds the
        node tree first (the pre-fast-path behavior, kept for ablation).
        Match sets are identical either way; the ``REPRO_INGEST`` environment
        variable overrides both directions (see :func:`resolve_ingest`).
    result_limit:
        Bound on each subscription's legacy ``results`` collection
        (``None`` keeps it unbounded — the pre-sink behavior).
    storage:
        State-storage backend: ``"memory"`` (default, all state in
        process) or ``"sqlite"`` (durable join state, registry and
        documents; resumable via ``open_broker(resume_from=...)``).
    durability:
        Commit policy of the ``"sqlite"`` backend: ``"epoch"`` (default,
        one durable commit per document) or ``"relaxed"`` (write-behind
        batched commits — faster ingest, a crash may lose the most recent
        epochs but never tears one).
    storage_path:
        Directory holding the ``"sqlite"`` backend's database files (one
        per broker member: ``broker.sqlite3``, ``shard-N.sqlite3``).
        ``None`` with ``storage="sqlite"`` creates a fresh temporary
        directory (exposed as the broker's ``storage_path``).
    metrics:
        Runtime observability (default off): the brokers and engines
        record publish-latency and per-stage histograms (p50/p95/p99/max)
        plus per-subscription delivery lag into
        :class:`repro.metrics.MetricsRegistry` objects, surfaced merged
        under ``broker.stats()["metrics"]``.  Disabled, the hot path pays
        one attribute check.  Match sets are identical either way.  The
        ``REPRO_METRICS=1`` environment variable force-enables it (replay
        override for running existing suites with metrics on; see
        :func:`metrics_enabled`).
    """

    engine: str = "mmqjp"
    indexing: str = "eager"
    plan_cache: bool = True
    prune_dispatch: bool = True
    delta_join: bool = True
    columnar: bool = True
    auto_prune: bool = True
    auto_timestamp: bool = True
    store_documents: Optional[bool] = None
    construct_outputs: bool = True
    view_cache_size: Optional[int] = None
    stream_history: int = 0
    shards: int = 1
    partitioner: Union[str, Any] = "hash"
    executor: Union[str, Any] = "serial"
    max_workers: Optional[int] = None
    route_dispatch: bool = True
    ingest: str = "stream"
    result_limit: Optional[int] = 1024
    storage: str = "memory"
    durability: str = "epoch"
    storage_path: Optional[str] = None
    metrics: bool = False

    # ------------------------------------------------------------------ #
    # validation (the single point for the whole stack)
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; choose one of {ENGINES}")
        if self.indexing not in INDEXING_MODES:
            raise ValueError(
                f"unknown indexing mode {self.indexing!r}; choose one of {INDEXING_MODES}"
            )
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        if self.view_cache_size is not None and self.view_cache_size < 1:
            raise ValueError(
                f"view_cache_size must be positive or None, got {self.view_cache_size}"
            )
        if self.stream_history < 0:
            raise ValueError(f"stream_history must be >= 0, got {self.stream_history}")
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be positive or None, got {self.max_workers}")
        if self.result_limit is not None and self.result_limit < 1:
            raise ValueError(
                f"result_limit must be positive or None, got {self.result_limit}"
            )
        if isinstance(self.partitioner, str) and self.partitioner not in PARTITIONERS:
            raise ValueError(
                f"unknown partitioner {self.partitioner!r}; choose one of {PARTITIONERS}"
            )
        if isinstance(self.executor, str) and self.executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {self.executor!r}; choose one of {EXECUTORS}"
            )
        if self.ingest not in INGEST_MODES:
            raise ValueError(
                f"unknown ingest mode {self.ingest!r}; choose one of {INGEST_MODES}"
            )
        if not isinstance(self.route_dispatch, bool):
            raise ValueError(
                f"route_dispatch must be True or False, got {self.route_dispatch!r}"
            )
        if not isinstance(self.columnar, bool):
            raise ValueError(
                f"columnar must be True or False, got {self.columnar!r}"
            )
        if not isinstance(self.metrics, bool):
            raise ValueError(
                f"metrics must be True or False, got {self.metrics!r}"
            )
        if self.storage not in STORAGE_BACKENDS:
            raise ValueError(
                f"unknown storage backend {self.storage!r}; choose one of {STORAGE_BACKENDS}"
            )
        if self.durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability mode {self.durability!r}; choose one of {DURABILITY_MODES}"
            )
        if self.storage_path is not None and self.storage != "sqlite":
            raise ValueError(
                f"storage_path requires storage='sqlite', got storage={self.storage!r}"
            )

    def validate_outputs(self) -> None:
        """Broker-level cross-check of output construction vs document storage.

        Called by the brokers (where ``construct_outputs`` matters): a
        session cannot build output XML without storing the source
        documents.  Engine-level consumers skip this check —
        ``store_documents=False`` with the default ``construct_outputs``
        is the normal throughput-engine configuration.
        """
        if self.construct_outputs and self.store_documents is False:
            raise ValueError("construct_outputs=True requires store_documents=True")

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @property
    def is_sharded(self) -> bool:
        """Whether this configuration selects the sharded runtime."""
        return self.shards > 1

    def resolve_store_documents(self, follow_construct_outputs: bool = False) -> bool:
        """Resolve the ``store_documents=None`` default for one consumer.

        The engines and the unsharded broker default to storing documents;
        the sharded runtime (``follow_construct_outputs=True``) drops
        storage whenever output construction is off (its throughput mode).
        """
        if self.store_documents is not None:
            return self.store_documents
        return self.construct_outputs if follow_construct_outputs else True

    def replace(self, **changes) -> "RuntimeConfig":
        """A copy of this config with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------ #
    # presets
    # ------------------------------------------------------------------ #
    @classmethod
    def throughput(cls, **overrides) -> "RuntimeConfig":
        """The throughput-measurement preset of the evaluation section.

        Sharded, thread-pooled ingestion with output construction and
        document storage off — the configuration of every events/second
        number in the benchmarks.  Any field can be overridden.
        """
        base: dict = dict(
            construct_outputs=False,
            store_documents=False,
            shards=4,
            executor="threads",
        )
        base.update(overrides)
        return cls(**base)

    @classmethod
    def ablation(cls, **overrides) -> "RuntimeConfig":
        """The all-knobs-off ablation baseline.

        Unindexed join state, plan-per-call evaluation, full-state joins,
        visit-every-template dispatch and replicate-to-every-shard fan-out
        — the behavior of the seed system, kept for equivalence and
        ablation runs.
        """
        base: dict = dict(
            indexing="off",
            plan_cache=False,
            prune_dispatch=False,
            delta_join=False,
            columnar=False,
            route_dispatch=False,
            ingest="tree",
        )
        base.update(overrides)
        return cls(**base)


def metrics_enabled(config: "RuntimeConfig") -> bool:
    """Whether ``config`` asks for runtime metrics, honoring ``REPRO_METRICS``.

    Mirrors the ``REPRO_EXECUTOR`` / ``REPRO_STORAGE`` replay overrides:
    setting ``REPRO_METRICS=1`` (or ``true`` / ``on``) in the environment
    turns metrics on for every broker and engine without touching call
    sites, so existing suites and benchmarks replay with observability
    enabled.  Metrics never change match sets, so force-enabling is safe.
    """
    if config.metrics:
        return True
    return os.environ.get("REPRO_METRICS", "").strip().lower() in ("1", "true", "on")


def resolve_ingest(config: "RuntimeConfig") -> str:
    """The effective ingest mode, honoring the ``REPRO_INGEST`` override.

    Mirrors :func:`metrics_enabled`: setting ``REPRO_INGEST=stream`` (or
    ``tree``) in the environment overrides every config — including the
    ablation preset — so existing suites replay under either ingest path
    without touching call sites.  Ingest never changes match sets, so
    overriding in both directions is safe.
    """
    override = os.environ.get("REPRO_INGEST", "").strip().lower()
    if override:
        if override not in INGEST_MODES:
            raise ValueError(
                f"REPRO_INGEST={override!r} is not a valid ingest mode; "
                f"choose one of {INGEST_MODES}"
            )
        return override
    return config.ingest


#: All field names of :class:`RuntimeConfig` (the legal legacy kwargs).
_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(RuntimeConfig))

#: Fields for which an explicit ``None`` is a *value*, not "not passed":
#: their semantics distinguish None (unbounded / resolve-later) from the
#: default.  Everywhere else a legacy ``None`` keeps the config default,
#: matching the historical ``None``-able keyword defaults (e.g. ``shards``).
_NONE_IS_A_VALUE = frozenset(
    {"store_documents", "view_cache_size", "max_workers", "result_limit"}
)


def coerce_config(
    config: Union[RuntimeConfig, str, None],
    legacy: Optional[Mapping[str, Any]] = None,
    owner: str = "Broker",
    warn: bool = True,
    stacklevel: int = 3,
) -> RuntimeConfig:
    """Resolve a constructor's ``(config, **legacy kwargs)`` pair.

    ``config`` may be a :class:`RuntimeConfig`, an engine-name string (the
    historical first positional argument of the brokers and
    :func:`~repro.core.engine.make_engine`), or ``None``.  Any legacy
    keyword arguments are folded into the config — with one
    :class:`DeprecationWarning` per call when ``warn`` — so old call sites
    keep constructing identical behavior.  Unknown keywords raise
    :class:`TypeError`.  ``None`` values are treated as "not passed" —
    matching the historical ``None``-able keyword defaults — except for the
    fields in :data:`_NONE_IS_A_VALUE`, where ``None`` means unbounded /
    resolve-later (e.g. ``result_limit=None`` keeps the legacy unbounded
    ``results`` list).
    """
    if isinstance(config, str):
        legacy = {"engine": config, **(legacy or {})}
        config = None
    elif config is not None and not isinstance(config, RuntimeConfig):
        raise TypeError(
            f"{owner} expects a RuntimeConfig, an engine name, or keyword "
            f"arguments; got {type(config).__name__}"
        )
    changes: dict[str, Any] = {}
    if legacy:
        unknown = set(legacy) - _CONFIG_FIELDS
        if unknown:
            raise TypeError(
                f"{owner}() got unexpected keyword argument(s) "
                f"{sorted(unknown)}; valid fields: {sorted(_CONFIG_FIELDS)}"
            )
        changes = {
            k: v
            for k, v in legacy.items()
            if v is not None or k in _NONE_IS_A_VALUE
        }
        if changes and warn:
            warnings.warn(
                f"passing individual keyword arguments to {owner} is "
                f"deprecated; pass repro.RuntimeConfig("
                + ", ".join(f"{k}=..." for k in sorted(changes))
                + ") instead",
                DeprecationWarning,
                stacklevel=stacklevel,
            )
    if config is None:
        return RuntimeConfig(**changes)
    if changes:
        return config.replace(**changes)
    return config
