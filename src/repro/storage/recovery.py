"""Crash recovery: rebuild a live broker session from its SQLite stores.

:func:`resume_broker` is the engine behind
``repro.open_broker(resume_from=path)``.  The stores hold four things the
process lost — the subscription registry, the variable catalog, the join
state, and the serialized documents — and recovery replays them in an order
that makes the rebuilt broker *match-equivalent* to one that never
restarted:

1. **Catalog first.**  Canonical variable names are assigned in
   registration order with collision suffixes (``x2`` vs ``x2_2``), so a
   catalog re-derived from replaying only the *surviving* subscriptions
   (cancelled ones are gone from the registry) could assign different names
   than the ones frozen into the persisted state rows.  Restoring the
   persisted catalog before any replay pins every name.
2. **Replay registrations** in their original sequence.  This rebuilds the
   derived structures — templates, ``RT`` tuples, Stage 1 registrations,
   compiled plans, relevance-index postings — through the exact same code
   path as a live ``subscribe``; on a sharded broker each join subscription
   is forced onto its recorded shard (document replication makes per-shard
   state placement-dependent).
3. **Load state rows and documents** straight into each engine's
   :class:`~repro.core.state.JoinState` and document map, and restore the
   persisted counters (timestamp clock, id counters) so future stamps and
   auto-generated ids continue where the crashed session stopped.

A persisted-vs-replayed template-refcount cross-check guards against a
registry/state mismatch (e.g. resuming with an incompatible config);
mismatches raise :class:`RecoveryError` rather than silently mis-joining.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Any, Mapping, Optional

from repro.config import RuntimeConfig
from repro.storage.base import STABLE_RELATIONS
from repro.storage.sqlite import SQLiteStore

__all__ = [
    "RecoveryError",
    "resume_broker",
    "config_snapshot",
    "recover_engine_catalog",
    "engine_registry_refcounts",
    "restore_engine_state",
    "docid_floor",
]


class RecoveryError(RuntimeError):
    """The stores are missing, inconsistent, or contradict the given config."""


def config_snapshot(config: RuntimeConfig) -> dict:
    """The JSON-serializable view of a config persisted in the broker store.

    ``storage_path`` is omitted (the snapshot lives *inside* that
    directory; recovery re-supplies it), and pluggable instances
    (partitioner/executor objects) degrade to their keyword names.
    """
    out: dict = {}
    for field in dataclasses.fields(config):
        if field.name == "storage_path":
            continue
        value = getattr(config, field.name)
        if value is None or isinstance(value, (str, int, float, bool)):
            out[field.name] = value
        else:
            out[field.name] = getattr(value, "name", str(value))
    return out


def resume_broker(
    config: "RuntimeConfig | str | None",
    path: str,
    overrides: Optional[Mapping[str, Any]] = None,
):
    """Rebuild the broker session persisted under ``path``.

    ``config`` may be ``None`` (reconstruct the crashed session's config
    from its persisted snapshot), an engine-name string, or an explicit
    :class:`~repro.config.RuntimeConfig`; ``overrides`` are applied on top.
    Whatever is supplied, ``storage``/``storage_path`` are forced back to
    the stores being resumed, and ``shards`` must match the persisted
    topology (join-state placement is per shard).
    """
    changes = dict(overrides or {})
    if isinstance(config, str):
        changes.setdefault("engine", config)
        config = None
    broker_db = os.path.join(path, "broker.sqlite3")
    if not os.path.exists(broker_db):
        raise RecoveryError(f"no broker store found at {broker_db!r}")
    probe = SQLiteStore(broker_db)
    try:
        stored = probe.get_meta("config")
    finally:
        probe.close()
    if stored is None:
        raise RecoveryError(
            f"broker store {broker_db!r} has no persisted config snapshot"
        )

    if config is None:
        known = {f.name for f in dataclasses.fields(RuntimeConfig)}
        config = RuntimeConfig(**{k: v for k, v in stored.items() if k in known})
    elif not isinstance(config, RuntimeConfig):
        raise TypeError(
            f"resume_from expects a RuntimeConfig, an engine name, or None; "
            f"got {type(config).__name__}"
        )
    changes["storage"] = "sqlite"
    changes["storage_path"] = path
    config = config.replace(**changes)
    if config.shards != stored.get("shards", config.shards):
        raise RecoveryError(
            f"cannot resume a {stored.get('shards')}-shard session with "
            f"shards={config.shards}; join-state placement is per shard"
        )

    if config.shards > 1:
        from repro.runtime.sharded_broker import ShardedBroker

        broker = ShardedBroker(config)
    else:
        from repro.pubsub.broker import Broker

        broker = Broker(config)
    try:
        _restore(broker)
    except BaseException:
        broker.close()
        raise
    return broker


class _EngineMember:
    """Recovery adapter over an in-process engine (unsharded broker or
    :class:`~repro.runtime.shard.EngineShard`).

    :class:`~repro.runtime.process.ProcessShardHandle` exposes the same
    three methods as worker commands, so recovery drives every topology —
    in-process or process-parallel — through one member interface, and the
    worker-side implementations are these very helpers.
    """

    def __init__(self, engine):
        self.engine = engine

    def recover_catalog(self):
        return recover_engine_catalog(self.engine)

    def registry_refcounts(self):
        return engine_registry_refcounts(self.engine)

    def recover_state(self):
        restore_engine_state(self.engine)
        return docid_floor(self.engine)


def _members(broker) -> list:
    shards = getattr(broker, "shards", None)
    if isinstance(shards, list):
        return [
            _EngineMember(shard.engine) if hasattr(shard, "engine") else shard
            for shard in shards
        ]
    return [_EngineMember(broker.engine)]


def _restore(broker) -> None:
    from repro.xscl.parser import parse_query

    members = _members(broker)

    # 1. Pin canonical variable names before any registration replays; the
    # same round-trip captures the integrity expectations, because the
    # replay below re-persists registration metadata through the live code
    # path.
    expected_refcounts = [member.recover_catalog() for member in members]

    # 2. Replay the surviving registrations in their original order.
    records = broker._store.subscriptions()
    for record in records:
        query = parse_query(record.query_text)
        broker._restore_subscription(record, query)

    for member, expected in zip(members, expected_refcounts):
        if expected is None:
            continue
        live = member.registry_refcounts()
        if live is None:
            continue
        if live != sorted(expected):
            raise RecoveryError(
                f"template refcounts after replay {live} do not match the "
                f"persisted refcounts {sorted(expected)}; the stores were "
                "written by an incompatible session"
            )

    # 3. Join state, documents, and counters.
    floor = max(member.recover_state() for member in members)
    _restore_broker_counters(broker, records)
    if floor:
        from repro.xmlmodel.document import advance_docid_counter

        advance_docid_counter(floor)


def recover_engine_catalog(engine):
    """Pin one engine's persisted catalog; returns the expected refcounts.

    Restoring the catalog *before* any registration replays is step 1 of
    recovery (see the module docstring); the returned value is the
    persisted ``template_refcounts`` multiset (or ``None``), captured in
    the same round-trip for the post-replay cross-check.
    """
    entries = engine.store.catalog_entries()
    engine.catalog.restore(entries)
    engine._catalog_watermark = len(entries)
    return engine.store.get_meta("template_refcounts")


def engine_registry_refcounts(engine):
    """One engine's live template-refcount multiset (``None`` without registry)."""
    registry = getattr(engine, "registry", None)
    if registry is None:
        return None
    return sorted(registry.template_sizes().values())


def docid_floor(engine) -> int:
    """The smallest safe auto-docid counter value for one engine's state.

    Auto-generated docids (``doc0``, ``doc1``, ...) come from a counter
    that restarts with the process; without advancing it past every
    persisted docid, the first unnamed document published after recovery
    would reuse a recovered docid and replace its state partitions.
    """
    import re

    floor = 0
    for docid in engine.store.state_docids():
        m = re.fullmatch(r"doc(\d+)", docid)
        if m:
            floor = max(floor, int(m.group(1)) + 1)
    return floor


def restore_engine_state(engine) -> None:
    from repro.xmlmodel.parser import parse_document

    store = engine.store
    state = engine._processor().state
    for relation in STABLE_RELATIONS:
        state.restore_rows(relation, store.state_rows(relation))
    if engine.store_documents:
        for doc in store.documents():
            engine.documents[doc.docid] = parse_document(
                doc.xml, docid=doc.docid, timestamp=doc.timestamp, stream=doc.stream
            )
    counters = store.get_meta("engine_counters") or {}
    engine.num_documents_processed = int(counters.get("documents", 0))
    engine.num_matches = int(counters.get("matches", 0))
    engine._clock_value = int(counters.get("clock", 0))


def _restore_broker_counters(broker, records) -> None:
    store = broker._store
    broker._sub_counter = int(store.get_meta("sub_counter", broker._sub_counter))
    broker._reg_seq = max((record.seq for record in records), default=0)
    if hasattr(broker, "_clock_value"):
        broker._clock_value = int(store.get_meta("clock", 0))
    if hasattr(broker, "_num_published"):
        broker._num_published = int(store.get_meta("num_published", 0))
