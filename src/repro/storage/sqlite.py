"""The SQLite state backend: one durable file per broker member.

Layout: one table per stable relation (``Rbin`` / ``Rdoc`` / ``Rvar`` /
``RdocTS``), column-typed from the canonical schemas in
:data:`repro.templates.cqt.RELATION_SCHEMAS` (node ids ``INTEGER``,
timestamps ``REAL``, everything else ``TEXT``), each indexed on ``docid`` so
the per-document partition replace and the window-pruning deletes touch only
the affected rows.  Alongside the state live the ``documents`` table (the
serialized source XML), the ``subscriptions`` registry, the variable
``catalog`` and a small JSON ``meta`` key/value table.

Write shape follows the engine's epoch protocol: one SQLite transaction per
document epoch, rows written with ``executemany`` (one batched statement per
relation per document).  The database runs in WAL mode with
``synchronous=NORMAL`` — readers never block the writer, and an OS-level
crash preserves every committed transaction.  ``durability="relaxed"``
keeps one transaction open across epochs and commits every
:data:`RELAXED_COMMIT_EVERY` documents (and on flush/close), trading a
bounded window of recent epochs for near-memory ingest speed; a crash still
never tears an epoch, because the whole open transaction rolls back.

Connections are opened with ``check_same_thread=False``: the sharded
runtime's thread-pool executor may run one shard's tasks on different pool
threads over time, but accesses to one shard's store are serialized by the
executor, never concurrent.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Iterable, Optional

from repro.storage.base import (
    DURABILITY_MODES,
    STABLE_RELATIONS,
    StateStore,
    StoredDocument,
    SubscriptionRecord,
)
from repro.templates.cqt import RELATION_SCHEMAS

__all__ = ["SQLiteStore", "RELAXED_COMMIT_EVERY", "sql_type_of"]

#: Under ``durability="relaxed"``, commit the open transaction every this
#: many document epochs (and on flush/close).
RELAXED_COMMIT_EVERY = 32


def sql_type_of(column: str) -> str:
    """The SQLite column type of one schema attribute (by naming convention).

    The relational layer's schemas are attribute-name lists; the names
    themselves are the type system — node ids are ``node``/``node1``/...,
    timestamps are ``timestamp``, and everything else (docids, canonical
    variable names, string values) is text.
    """
    if column.startswith("node"):
        return "INTEGER"
    if column == "timestamp":
        return "REAL"
    return "TEXT"


def _schema_sql(relation: str) -> str:
    columns = ", ".join(
        f'"{name}" {sql_type_of(name)} NOT NULL' for name in RELATION_SCHEMAS[relation]
    )
    return f'CREATE TABLE IF NOT EXISTS "{relation}" ({columns})'


#: Max parameters per ``IN (...)`` clause (SQLite's historical variable cap
#: is 999; stay comfortably below it).
_IN_CHUNK = 500


class SQLiteStore(StateStore):
    """A :class:`~repro.storage.base.StateStore` on one SQLite database file."""

    def __init__(self, path: str, durability: str = "epoch"):
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability mode {durability!r}; choose one of {DURABILITY_MODES}"
            )
        self.path = path
        self.durability = durability
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        # isolation_level=None puts the connection in autocommit mode;
        # transactions are controlled explicitly (BEGIN per epoch).
        self._conn: Optional[sqlite3.Connection] = sqlite3.connect(
            path, check_same_thread=False, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._in_transaction = False
        self._epoch_open = False
        self._epochs_pending = 0
        self.epochs_committed = 0
        self._create_tables()

    # ------------------------------------------------------------------ #
    # schema
    # ------------------------------------------------------------------ #
    def _create_tables(self) -> None:
        conn = self._connection()
        for relation in STABLE_RELATIONS:
            conn.execute(_schema_sql(relation))
            conn.execute(
                f'CREATE INDEX IF NOT EXISTS "{relation}_docid" ON "{relation}" (docid)'
            )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS documents ("
            "docid TEXT PRIMARY KEY, timestamp REAL NOT NULL, "
            "stream TEXT NOT NULL, xml TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS subscriptions ("
            "sid TEXT PRIMARY KEY, seq INTEGER NOT NULL, "
            "query TEXT NOT NULL, kind TEXT NOT NULL, shard INTEGER)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS catalog ("
            "name TEXT PRIMARY KEY, stream TEXT NOT NULL, path TEXT NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)"
        )

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            raise RuntimeError(f"store {self.path!r} is closed")
        return self._conn

    @property
    def journal_mode(self) -> str:
        """The live journal mode (``"wal"`` on any file-backed store)."""
        return self._connection().execute("PRAGMA journal_mode").fetchone()[0]

    # ------------------------------------------------------------------ #
    # epochs
    # ------------------------------------------------------------------ #
    def _do_begin_epoch(self, docid: str) -> None:
        if self._epoch_open:
            raise RuntimeError("an epoch is already open; commit or abort it first")
        if not self._in_transaction:
            self._connection().execute("BEGIN")
            self._in_transaction = True
        self._epoch_open = True

    def _do_commit_epoch(self) -> None:
        self._epoch_open = False
        self.epochs_committed += 1
        if self.durability == "epoch":
            self._commit_transaction()
        else:
            self._epochs_pending += 1
            if self._epochs_pending >= RELAXED_COMMIT_EVERY:
                self._commit_transaction()

    def _do_abort_epoch(self) -> None:
        # Rolls back the whole open transaction: under "relaxed" this also
        # discards earlier not-yet-committed epochs, which is exactly the
        # mode's contract (recent epochs may be lost, none is ever torn).
        self._epoch_open = False
        if self._in_transaction:
            self._connection().execute("ROLLBACK")
            self._in_transaction = False
            self._epochs_pending = 0

    def _commit_transaction(self) -> None:
        if self._in_transaction:
            self._connection().execute("COMMIT")
            self._in_transaction = False
            self._epochs_pending = 0

    # ------------------------------------------------------------------ #
    # join state
    # ------------------------------------------------------------------ #
    def _do_upsert_rows(self, relation: str, docid: str, rows: Iterable[tuple]) -> None:
        if relation not in STABLE_RELATIONS:
            raise KeyError(f"unknown stable relation {relation!r}")
        conn = self._connection()
        conn.execute(f'DELETE FROM "{relation}" WHERE docid = ?', (docid,))
        rows = rows if isinstance(rows, list) else list(rows)
        if rows:
            placeholders = ", ".join("?" * len(RELATION_SCHEMAS[relation]))
            conn.executemany(
                f'INSERT INTO "{relation}" VALUES ({placeholders})', rows
            )

    def _do_put_document(self, docid: str, timestamp: float, stream: str, xml: str) -> None:
        self._connection().execute(
            "INSERT OR REPLACE INTO documents (docid, timestamp, stream, xml) "
            "VALUES (?, ?, ?, ?)",
            (docid, timestamp, stream, xml),
        )

    def _do_delete_documents(self, docids: list[str]) -> None:
        conn = self._connection()
        for start in range(0, len(docids), _IN_CHUNK):
            chunk = docids[start : start + _IN_CHUNK]
            marks = ", ".join("?" * len(chunk))
            for relation in STABLE_RELATIONS:
                conn.execute(
                    f'DELETE FROM "{relation}" WHERE docid IN ({marks})', chunk
                )
            conn.execute(f"DELETE FROM documents WHERE docid IN ({marks})", chunk)
        self._autocommit()

    def _do_delete_variables(self, variables: set[str]) -> None:
        conn = self._connection()
        dead = sorted(variables)
        for start in range(0, len(dead), _IN_CHUNK):
            chunk = dead[start : start + _IN_CHUNK]
            marks = ", ".join("?" * len(chunk))
            conn.execute(
                f'DELETE FROM "Rbin" WHERE var1 IN ({marks}) OR var2 IN ({marks})',
                chunk + chunk,
            )
            conn.execute(f'DELETE FROM "Rvar" WHERE var IN ({marks})', chunk)
        self._autocommit()

    def _do_clear_state(self) -> None:
        conn = self._connection()
        for relation in STABLE_RELATIONS:
            conn.execute(f'DELETE FROM "{relation}"')
        conn.execute("DELETE FROM documents")
        self._autocommit()

    def _autocommit(self) -> None:
        """Commit a standalone (outside-epoch) write under ``"epoch"`` durability.

        Inside an open epoch/relaxed transaction the write simply joins it —
        deletions issued mid-epoch (auto-prune) stay atomic with the epoch.
        """
        if self._in_transaction and not self._epoch_open and self.durability == "epoch":
            self._commit_transaction()

    # ------------------------------------------------------------------ #
    # registry / catalog / meta (immediately durable)
    # ------------------------------------------------------------------ #
    def _do_save_subscription(self, record: SubscriptionRecord) -> None:
        self._commit_pending()
        self._connection().execute(
            "INSERT OR REPLACE INTO subscriptions (sid, seq, query, kind, shard) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                record.subscription_id,
                record.seq,
                record.query_text,
                record.kind,
                record.shard,
            ),
        )

    def _do_remove_subscription(self, subscription_id: str) -> None:
        self._commit_pending()
        self._connection().execute(
            "DELETE FROM subscriptions WHERE sid = ?", (subscription_id,)
        )

    def _do_subscriptions(self) -> list[SubscriptionRecord]:
        rows = self._connection().execute(
            "SELECT seq, sid, query, kind, shard FROM subscriptions ORDER BY seq"
        )
        return [SubscriptionRecord(*row) for row in rows]

    def _do_save_catalog_entries(self, entries: list[tuple[str, str, str]]) -> None:
        if not entries:
            return
        self._connection().executemany(
            "INSERT OR REPLACE INTO catalog (name, stream, path) VALUES (?, ?, ?)",
            entries,
        )
        self._autocommit()

    def _do_catalog_entries(self) -> list[tuple[str, str, str]]:
        return list(
            self._connection().execute(
                "SELECT name, stream, path FROM catalog ORDER BY rowid"
            )
        )

    def _do_set_meta(self, key: str, value) -> None:
        self._connection().execute(
            "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
            (key, json.dumps(value)),
        )
        self._autocommit()

    def _do_get_meta(self, key: str, default):
        row = self._connection().execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else json.loads(row[0])

    def _commit_pending(self) -> None:
        """Make buffered relaxed epochs durable before a registry write.

        Registration order must never run ahead of the state it refers to,
        so registry writes first flush any open write-behind transaction.
        """
        if self._in_transaction and not self._epoch_open:
            self._commit_transaction()

    # ------------------------------------------------------------------ #
    # recovery readers
    # ------------------------------------------------------------------ #
    def state_rows(self, relation: str) -> list[tuple]:
        if relation not in STABLE_RELATIONS:
            raise KeyError(f"unknown stable relation {relation!r}")
        return list(self._connection().execute(f'SELECT * FROM "{relation}"'))

    def documents(self) -> list[StoredDocument]:
        rows = self._connection().execute(
            "SELECT docid, timestamp, stream, xml FROM documents"
        )
        return [StoredDocument(*row) for row in rows]

    def state_docids(self) -> set[str]:
        """Docids with at least one committed row (torn-state test helper)."""
        out: set[str] = set()
        for relation in STABLE_RELATIONS:
            for (docid,) in self._connection().execute(
                f'SELECT DISTINCT docid FROM "{relation}"'
            ):
                out.add(docid)
        return out

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        if self._conn is None:
            return
        if self._epoch_open:
            raise RuntimeError("cannot flush with an open epoch")
        self._commit_transaction()

    def close(self) -> None:
        if self._conn is None:
            return
        if self._epoch_open:
            self.abort_epoch()
        self._commit_transaction()
        self._conn.close()
        self._conn = None

    @property
    def closed(self) -> bool:
        return self._conn is None

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"<SQLiteStore {self.path!r} durability={self.durability!r} {state}>"
