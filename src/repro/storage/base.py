"""The state-store protocol and its in-memory reference implementation.

A :class:`StateStore` externalizes everything a broker session would lose in
a crash:

* the **join state** — the stable relations ``Rbin`` / ``Rdoc`` / ``Rvar`` /
  ``RdocTS``, written per *document epoch* and keyed by
  ``(relation, docid)``, mirroring the docid-partitioned layout of
  :class:`~repro.core.state.JoinState`;
* the **subscription registry** — one record per subscription (query text,
  kind, owning shard), enough to replay every registration on recovery;
* the **variable catalog** — the canonical-name table of
  :class:`~repro.xscl.normalize.VariableCatalog`.  Canonical names resolve
  surface-name collisions in registration order, so a catalog re-derived
  from a replay that skips cancelled subscriptions could drift from the
  names frozen into the persisted state rows; restoring the catalog first
  pins them;
* **documents** — the serialized source XML (only when the engine stores
  documents), so output construction works across a restart;
* **metadata** — small counters (timestamp clock, id counters, template
  refcounts) that must survive a restart.

Writes are grouped into *epochs*: one epoch per processed document,
bracketed by :meth:`StateStore.begin_epoch` / :meth:`StateStore.commit_epoch`.
An epoch is atomic — a crash between ``begin`` and ``commit`` leaves no
trace of the document (no torn state across the four relations).  The
``durability`` mode decides when an epoch becomes durable:

* ``"epoch"`` — every commit is durable before the next document starts;
* ``"relaxed"`` — commits are write-behind: epochs accumulate in one open
  transaction and are made durable every few epochs and on
  :meth:`StateStore.flush` / :meth:`StateStore.close`.  A crash can lose
  the most recent epochs but never tears one.

Every store carries a **fault-injection hook** (:attr:`StateStore.fault_hook`)
called at each named write point; a hook that raises simulates a crash
mid-epoch, which is how the torn-state tests drive recovery.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.config import DURABILITY_MODES, STORAGE_BACKENDS

__all__ = [
    "STORAGE_BACKENDS",
    "DURABILITY_MODES",
    "STABLE_RELATIONS",
    "SubscriptionRecord",
    "StoredDocument",
    "StateStore",
    "MemoryStore",
    "storage_env_overrides",
]

#: The stable join-state relations a store persists (the per-document witness
#: relations are ephemeral by design and never hit the store).
STABLE_RELATIONS = ("Rbin", "Rdoc", "Rvar", "RdocTS")


@dataclass(frozen=True)
class SubscriptionRecord:
    """One persisted subscription registration.

    ``seq`` is the broker-wide registration order (recovery replays in this
    order so per-engine canonicalization and template matching repeat
    deterministically); ``shard`` is the owning shard id for join
    subscriptions of a sharded broker (``None`` otherwise).
    """

    seq: int
    subscription_id: str
    query_text: str
    kind: str  # "join" | "filter"
    shard: Optional[int] = None


@dataclass(frozen=True)
class StoredDocument:
    """One persisted source document (for output construction after recovery)."""

    docid: str
    timestamp: float
    stream: str
    xml: str


class StateStore:
    """Abstract durable backend for broker/engine state.

    Concrete stores implement the ``_do_*`` primitives; the public methods
    add the shared fault-injection hook.  All mutating state methods must be
    called inside an epoch except the registry/meta methods, which form
    their own (immediately durable) transactions.
    """

    #: Optional fault-injection hook: called with the write-point name
    #: (``"begin_epoch"``, ``"upsert_rows"``, ``"put_document"``,
    #: ``"commit_epoch"``, ``"delete_documents"``, ...) before the write
    #: executes.  Raising from the hook simulates a crash at that point; the
    #: open epoch is rolled back.
    fault_hook: Optional[Callable[[str], None]] = None

    #: Durability mode of this store (``"epoch"`` or ``"relaxed"``).
    durability: str = "epoch"

    def _fault(self, point: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(point)

    # ------------------------------------------------------------------ #
    # document epochs
    # ------------------------------------------------------------------ #
    def begin_epoch(self, docid: str) -> None:
        """Open the atomic write scope of one processed document."""
        self._fault("begin_epoch")
        self._do_begin_epoch(docid)

    def commit_epoch(self) -> None:
        """Close the current epoch; the hook fires *before* the commit."""
        try:
            self._fault("commit_epoch")
        except BaseException:
            self.abort_epoch()
            raise
        self._do_commit_epoch()

    def abort_epoch(self) -> None:
        """Discard the current epoch's writes (crash/abort path)."""
        self._do_abort_epoch()

    # ------------------------------------------------------------------ #
    # join state (inside an epoch)
    # ------------------------------------------------------------------ #
    def upsert_rows(self, relation: str, docid: str, rows: Iterable[tuple]) -> None:
        """Replace the ``(relation, docid)`` partition with ``rows``.

        Rows use the relation's full schema (``docid`` column included).
        Replacement (rather than append) makes epoch replay idempotent: a
        recovered session re-processing a document that was already
        committed cannot duplicate its partition.
        """
        self._fault("upsert_rows")
        self._do_upsert_rows(relation, docid, rows)

    def put_document(self, docid: str, timestamp: float, stream: str, xml: str) -> None:
        """Persist one serialized source document (inside its epoch)."""
        self._fault("put_document")
        self._do_put_document(docid, timestamp, stream, xml)

    # ------------------------------------------------------------------ #
    # deletions (their own small transactions)
    # ------------------------------------------------------------------ #
    def delete_documents(self, docids: Iterable[str]) -> None:
        """Drop every persisted trace of the given documents (pruning path)."""
        self._fault("delete_documents")
        self._do_delete_documents(list(docids))

    def delete_variables(self, variables: Iterable[str]) -> None:
        """Drop ``Rbin``/``Rvar`` rows bound to the given variables.

        The retraction path: mirrors
        :meth:`repro.core.state.JoinState.drop_variables` (``Rdoc`` rows are
        node-keyed and shared, so they survive until their document goes).
        """
        self._fault("delete_variables")
        self._do_delete_variables(set(variables))

    def clear_state(self) -> None:
        """Drop all join state and documents (last query deregistered)."""
        self._fault("clear_state")
        self._do_clear_state()

    # ------------------------------------------------------------------ #
    # subscription registry
    # ------------------------------------------------------------------ #
    def save_subscription(self, record: SubscriptionRecord) -> None:
        """Persist (or overwrite) one subscription registration."""
        self._fault("save_subscription")
        self._do_save_subscription(record)

    def remove_subscription(self, subscription_id: str) -> None:
        """Remove one subscription registration (cancel path)."""
        self._fault("remove_subscription")
        self._do_remove_subscription(subscription_id)

    def subscriptions(self) -> list[SubscriptionRecord]:
        """All persisted registrations, in ``seq`` order."""
        return sorted(self._do_subscriptions(), key=lambda r: r.seq)

    # ------------------------------------------------------------------ #
    # variable catalog
    # ------------------------------------------------------------------ #
    def save_catalog_entries(
        self, entries: Iterable[tuple[str, str, str]]
    ) -> None:
        """Persist canonical-name entries ``(name, stream, path)`` (append-only)."""
        self._do_save_catalog_entries(list(entries))

    def catalog_entries(self) -> list[tuple[str, str, str]]:
        """All persisted canonical-name entries, in registration order."""
        return self._do_catalog_entries()

    # ------------------------------------------------------------------ #
    # metadata
    # ------------------------------------------------------------------ #
    def set_meta(self, key: str, value) -> None:
        """Persist one small metadata value (JSON-serializable)."""
        self._do_set_meta(key, value)

    def get_meta(self, key: str, default=None):
        """Read one metadata value (``default`` when absent)."""
        return self._do_get_meta(key, default)

    # ------------------------------------------------------------------ #
    # recovery readers
    # ------------------------------------------------------------------ #
    def state_rows(self, relation: str) -> list[tuple]:
        """All persisted rows of one stable relation (full schema)."""
        raise NotImplementedError

    def documents(self) -> list[StoredDocument]:
        """All persisted source documents."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def flush(self) -> None:
        """Make every buffered write durable (no-op under ``"epoch"``)."""

    def close(self) -> None:
        """Flush and release the store.  Idempotent."""

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # primitives
    # ------------------------------------------------------------------ #
    def _do_begin_epoch(self, docid: str) -> None:
        raise NotImplementedError

    def _do_commit_epoch(self) -> None:
        raise NotImplementedError

    def _do_abort_epoch(self) -> None:
        raise NotImplementedError

    def _do_upsert_rows(self, relation: str, docid: str, rows: Iterable[tuple]) -> None:
        raise NotImplementedError

    def _do_put_document(self, docid: str, timestamp: float, stream: str, xml: str) -> None:
        raise NotImplementedError

    def _do_delete_documents(self, docids: list[str]) -> None:
        raise NotImplementedError

    def _do_delete_variables(self, variables: set[str]) -> None:
        raise NotImplementedError

    def _do_clear_state(self) -> None:
        raise NotImplementedError

    def _do_save_subscription(self, record: SubscriptionRecord) -> None:
        raise NotImplementedError

    def _do_remove_subscription(self, subscription_id: str) -> None:
        raise NotImplementedError

    def _do_subscriptions(self) -> list[SubscriptionRecord]:
        raise NotImplementedError

    def _do_save_catalog_entries(self, entries: list[tuple[str, str, str]]) -> None:
        raise NotImplementedError

    def _do_catalog_entries(self) -> list[tuple[str, str, str]]:
        raise NotImplementedError

    def _do_set_meta(self, key: str, value) -> None:
        raise NotImplementedError

    def _do_get_meta(self, key: str, default):
        raise NotImplementedError


class MemoryStore(StateStore):
    """The in-memory reference implementation of :class:`StateStore`.

    ``storage="memory"`` (the default) attaches *no* store at all — the
    in-process :class:`~repro.core.state.JoinState` already is the state,
    and the hot path stays byte-for-byte the pre-storage behavior.  A
    ``MemoryStore`` is what you get when you want the *protocol* without a
    file: it stages each epoch and publishes it atomically on commit, so
    fault-injection, torn-state and in-process snapshot/restore tests run
    against the same semantics as :class:`~repro.storage.sqlite.SQLiteStore`
    without touching disk.
    """

    def __init__(self, durability: str = "epoch"):
        if durability not in DURABILITY_MODES:
            raise ValueError(
                f"unknown durability mode {durability!r}; choose one of {DURABILITY_MODES}"
            )
        self.durability = durability
        #: Committed partitions: relation -> docid -> list of rows.
        self._state: dict[str, dict[str, list[tuple]]] = {
            name: {} for name in STABLE_RELATIONS
        }
        self._documents: dict[str, StoredDocument] = {}
        self._subscriptions: dict[str, SubscriptionRecord] = {}
        self._catalog: dict[str, tuple[str, str]] = {}
        self._meta: dict[str, object] = {}
        self._epoch_docid: Optional[str] = None
        self._staged_rows: list[tuple[str, str, list[tuple]]] = []
        self._staged_document: Optional[StoredDocument] = None
        self.epochs_committed = 0
        self.closed = False

    # -- epochs --------------------------------------------------------- #
    def _do_begin_epoch(self, docid: str) -> None:
        if self._epoch_docid is not None:
            raise RuntimeError(
                f"epoch for {self._epoch_docid!r} is still open; commit or abort it first"
            )
        self._epoch_docid = docid
        self._staged_rows = []
        self._staged_document = None

    def _do_commit_epoch(self) -> None:
        for relation, docid, rows in self._staged_rows:
            self._state[relation][docid] = rows
        if self._staged_document is not None:
            self._documents[self._staged_document.docid] = self._staged_document
        self._epoch_docid = None
        self._staged_rows = []
        self._staged_document = None
        self.epochs_committed += 1

    def _do_abort_epoch(self) -> None:
        self._epoch_docid = None
        self._staged_rows = []
        self._staged_document = None

    # -- state ---------------------------------------------------------- #
    def _do_upsert_rows(self, relation: str, docid: str, rows: Iterable[tuple]) -> None:
        if relation not in self._state:
            raise KeyError(f"unknown stable relation {relation!r}")
        if self._epoch_docid is None:
            raise RuntimeError("upsert_rows outside of an epoch")
        self._staged_rows.append((relation, docid, [tuple(r) for r in rows]))

    def _do_put_document(self, docid: str, timestamp: float, stream: str, xml: str) -> None:
        if self._epoch_docid is None:
            raise RuntimeError("put_document outside of an epoch")
        self._staged_document = StoredDocument(docid, timestamp, stream, xml)

    def _do_delete_documents(self, docids: list[str]) -> None:
        for partitions in self._state.values():
            for docid in docids:
                partitions.pop(docid, None)
        for docid in docids:
            self._documents.pop(docid, None)

    def _do_delete_variables(self, variables: set[str]) -> None:
        for docid, rows in list(self._state["Rbin"].items()):
            kept = [r for r in rows if r[1] not in variables and r[2] not in variables]
            if len(kept) != len(rows):
                if kept:
                    self._state["Rbin"][docid] = kept
                else:
                    del self._state["Rbin"][docid]
        for docid, rows in list(self._state["Rvar"].items()):
            kept = [r for r in rows if r[1] not in variables]
            if len(kept) != len(rows):
                if kept:
                    self._state["Rvar"][docid] = kept
                else:
                    del self._state["Rvar"][docid]

    def _do_clear_state(self) -> None:
        for partitions in self._state.values():
            partitions.clear()
        self._documents.clear()

    # -- registry / catalog / meta -------------------------------------- #
    def _do_save_subscription(self, record: SubscriptionRecord) -> None:
        self._subscriptions[record.subscription_id] = record

    def _do_remove_subscription(self, subscription_id: str) -> None:
        self._subscriptions.pop(subscription_id, None)

    def _do_subscriptions(self) -> list[SubscriptionRecord]:
        return list(self._subscriptions.values())

    def _do_save_catalog_entries(self, entries: list[tuple[str, str, str]]) -> None:
        for name, stream, path in entries:
            self._catalog[name] = (stream, path)

    def _do_catalog_entries(self) -> list[tuple[str, str, str]]:
        return [(name, s, p) for name, (s, p) in self._catalog.items()]

    def _do_set_meta(self, key: str, value) -> None:
        self._meta[key] = value

    def _do_get_meta(self, key: str, default):
        return self._meta.get(key, default)

    # -- recovery readers ----------------------------------------------- #
    def state_rows(self, relation: str) -> list[tuple]:
        out: list[tuple] = []
        for rows in self._state[relation].values():
            out.extend(rows)
        return out

    def documents(self) -> list[StoredDocument]:
        return list(self._documents.values())

    def state_docids(self) -> set[str]:
        """Docids with at least one committed partition (test helper)."""
        out: set[str] = set()
        for partitions in self._state.values():
            out.update(partitions)
        return out

    # -- lifecycle ------------------------------------------------------ #
    def close(self) -> None:
        if self._epoch_docid is not None:
            self.abort_epoch()
        self.closed = True


def storage_env_overrides(storage: str, path: Optional[str]) -> tuple[str, Optional[str]]:
    """Apply the ``REPRO_STORAGE`` / ``REPRO_STORAGE_DIR`` environment overrides.

    The hook behind the CI storage matrix: with ``REPRO_STORAGE=sqlite`` any
    broker constructed with the default ``storage="memory"`` transparently
    runs on a :class:`~repro.storage.sqlite.SQLiteStore` instead (each
    broker in its own fresh directory under ``REPRO_STORAGE_DIR``, or the
    system temp dir), so whole test suites can be replayed against the
    durable backend without touching their code.  Configs that select a
    backend explicitly are never overridden.
    """
    env = os.environ.get("REPRO_STORAGE")
    if not env or storage != "memory":
        return storage, path
    if env not in STORAGE_BACKENDS:
        raise ValueError(
            f"REPRO_STORAGE={env!r} is not a storage backend; "
            f"choose one of {STORAGE_BACKENDS}"
        )
    if env == "memory":
        return storage, path
    base = os.environ.get("REPRO_STORAGE_DIR")
    if base:
        os.makedirs(base, exist_ok=True)
    return env, tempfile.mkdtemp(prefix="repro-storage-", dir=base or None)
