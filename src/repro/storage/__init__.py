"""repro.storage — durable, pluggable state backends.

The subsystem behind ``RuntimeConfig(storage=..., durability=...)``:

* :class:`StateStore` — the protocol every backend implements: atomic
  per-document *epochs* over the stable join-state relations, a persisted
  subscription registry + variable catalog, serialized documents, and small
  metadata, with a fault-injection hook for crash testing.
* :class:`MemoryStore` — the in-process reference implementation (epoch
  staging, so aborts and crash semantics are testable without a file).
* :class:`~repro.storage.sqlite.SQLiteStore` — the durable backend: WAL-mode
  SQLite, one column-typed table per stable relation, ``executemany``
  batched writes per epoch.
* :func:`resolve_storage` / :func:`open_member_store` — how the brokers turn
  a config into concrete per-member stores (``broker.sqlite3`` for the
  registry, ``shard-N.sqlite3`` per engine).
* :mod:`repro.storage.recovery` — rebuilds a broker from its stores
  (``repro.open_broker(resume_from=path)``).

With the default ``storage="memory"`` no store object is attached anywhere:
the hot path is byte-for-byte the pre-storage behavior.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from repro.storage.base import (
    DURABILITY_MODES,
    STABLE_RELATIONS,
    STORAGE_BACKENDS,
    MemoryStore,
    StateStore,
    StoredDocument,
    SubscriptionRecord,
    storage_env_overrides,
)
from repro.storage.sqlite import SQLiteStore

__all__ = [
    "STORAGE_BACKENDS",
    "DURABILITY_MODES",
    "STABLE_RELATIONS",
    "StateStore",
    "MemoryStore",
    "SQLiteStore",
    "StoredDocument",
    "SubscriptionRecord",
    "storage_env_overrides",
    "resolve_storage",
    "open_member_store",
]


def resolve_storage(config) -> tuple[str, Optional[str]]:
    """Resolve a config's effective ``(storage, storage_path)`` pair.

    Applies the ``REPRO_STORAGE`` / ``REPRO_STORAGE_DIR`` environment
    overrides (the CI storage-matrix hook — see
    :func:`~repro.storage.base.storage_env_overrides`) and materializes a
    fresh temporary directory when ``storage="sqlite"`` is selected without
    an explicit path.  Called once per broker, so every member store of one
    session lands in the same directory.
    """
    storage, path = storage_env_overrides(config.storage, config.storage_path)
    if storage == "sqlite" and path is None:
        path = tempfile.mkdtemp(prefix="repro-storage-")
    return storage, path


def open_member_store(
    storage: str,
    path: Optional[str],
    member: str,
    durability: str = "epoch",
) -> Optional[StateStore]:
    """Open the state store of one broker member, or ``None`` for memory.

    ``member`` names the database file inside the storage directory:
    ``"broker"`` for the registry store, ``"shard-N"`` for each engine.
    ``storage="memory"`` deliberately returns ``None`` — the in-process
    state *is* the store, and attaching nothing keeps the hot path free of
    any storage branch cost.
    """
    if storage == "memory":
        return None
    if storage != "sqlite":
        raise ValueError(
            f"unknown storage backend {storage!r}; choose one of {STORAGE_BACKENDS}"
        )
    if path is None:
        raise ValueError("storage='sqlite' needs a storage directory")
    os.makedirs(path, exist_ok=True)
    return SQLiteStore(os.path.join(path, f"{member}.sqlite3"), durability=durability)
