"""Construction of the per-template conjunctive query ``CQT`` (Sections 4.3–4.4, 5).

For a query template the conjunctive query joins:

* level L1 — copies of ``Rdoc`` / ``RdocW`` (string values), one pair per
  value-join edge, joined on the string value;
* level L2 — copies of ``Rbin`` / ``RbinW`` (structural-edge witnesses), one
  per structural edge of the template;
* level L3 — the template relation ``RT`` (one tuple per registered query).

Template nodes with no incident structural edge (which happens when a block
contributes a single value-join leaf, so the reduction spliced out its root)
additionally get a unary ``Rvar`` / ``RvarW`` atom.  This carries the
variable identity that the paper's ``Rdoc`` relation alone cannot, keeping
the multi-query evaluation exactly equivalent to per-query evaluation.

:func:`build_cqt_materialized` produces the Section 5 variant over the
materialized views ``RL`` / ``RR`` (and their unary analogues) instead of
the raw witness relations.
"""

from __future__ import annotations

from repro.relational.conjunctive import ConjunctiveQuery
from repro.relational.terms import Var
from repro.templates.join_graph import Side
from repro.templates.template import QueryTemplate

#: Schemas of the shared witness/state relations (attribute names in order).
RELATION_SCHEMAS: dict[str, list[str]] = {
    "Rdoc": ["docid", "node", "strVal"],
    "RdocW": ["node", "strVal"],
    "Rbin": ["docid", "var1", "var2", "node1", "node2"],
    "RbinW": ["var1", "var2", "node1", "node2"],
    "Rvar": ["docid", "var", "node"],
    "RvarW": ["var", "node"],
    "RdocTS": ["docid", "timestamp"],
    "RdocTSW": ["docid", "timestamp"],
    # Materialized views (Section 5).
    "Rvj": ["docid", "node1", "node2", "strVal"],
    "RL": ["docid", "var1", "var2", "node1", "node2", "strVal"],
    "RR": ["var1", "var2", "node1", "node2", "strVal"],
    "RLvar": ["docid", "var", "node", "strVal"],
    "RRvar": ["var", "node", "strVal"],
}


def _node_var(meta: str) -> Var:
    return Var(f"n_{meta}")


def _name_var(meta: str) -> Var:
    return Var(f"mv_{meta}")


def _head(template: QueryTemplate) -> tuple[list[str], list[Var]]:
    schema = ["qid", "docid1"] + [f"node_{meta}" for meta in template.meta_order] + ["wl"]
    terms = [Var("qid"), Var("docid")] + [_node_var(m) for m in template.meta_order] + [Var("wl")]
    return schema, terms


def _rt_atom_terms(template: QueryTemplate) -> list[Var]:
    return [Var("qid")] + [_name_var(m) for m in template.meta_order] + [Var("wl")]


def build_cqt(template: QueryTemplate) -> ConjunctiveQuery:
    """Build the base conjunctive query of Section 4.4 for ``template``."""
    head_schema, head_terms = _head(template)
    cq = ConjunctiveQuery(
        head_name=template.out_relation_name(),
        head_schema=head_schema,
        head_terms=head_terms,
    )

    # L1: one Rdoc/RdocW pair per value-join edge, joined on the string value.
    for i, (left_meta, right_meta) in enumerate(template.value_edges):
        s = Var(f"s_{i}")
        cq.add_atom("Rdoc", [Var("docid"), _node_var(left_meta), s])
        cq.add_atom("RdocW", [_node_var(right_meta), s])

    # L2: one Rbin/RbinW atom per structural edge.
    for parent, child in template.structural_edges:
        if template.node_sides[parent] is Side.LEFT:
            cq.add_atom(
                "Rbin",
                [Var("docid"), _name_var(parent), _name_var(child),
                 _node_var(parent), _node_var(child)],
            )
        else:
            cq.add_atom(
                "RbinW",
                [_name_var(parent), _name_var(child), _node_var(parent), _node_var(child)],
            )

    # Unary variable-binding atoms for nodes without structural edges.
    for meta in template.isolated_meta_vars():
        if template.node_sides[meta] is Side.LEFT:
            cq.add_atom("Rvar", [Var("docid"), _name_var(meta), _node_var(meta)])
        else:
            cq.add_atom("RvarW", [_name_var(meta), _node_var(meta)])

    # L3: the template relation.
    cq.add_atom(template.rt_relation_name(), _rt_atom_terms(template))
    return cq


def build_cqt_materialized(template: QueryTemplate) -> ConjunctiveQuery:
    """Build the Section 5 conjunctive query over the materialized views RL/RR."""
    head_schema, head_terms = _head(template)
    cq = ConjunctiveQuery(
        head_name=template.out_relation_name(),
        head_schema=head_schema,
        head_terms=head_terms,
    )

    covered_struct: set[tuple[str, str]] = set()
    for i, (left_meta, right_meta) in enumerate(template.value_edges):
        s = Var(f"s_{i}")

        left_parent = template.structural_parent_of(left_meta)
        if left_parent is not None:
            cq.add_atom(
                "RL",
                [Var("docid"), _name_var(left_parent), _name_var(left_meta),
                 _node_var(left_parent), _node_var(left_meta), s],
            )
            covered_struct.add((left_parent, left_meta))
        else:
            cq.add_atom("RLvar", [Var("docid"), _name_var(left_meta), _node_var(left_meta), s])

        right_parent = template.structural_parent_of(right_meta)
        if right_parent is not None:
            cq.add_atom(
                "RR",
                [_name_var(right_parent), _name_var(right_meta),
                 _node_var(right_parent), _node_var(right_meta), s],
            )
            covered_struct.add((right_parent, right_meta))
        else:
            cq.add_atom("RRvar", [_name_var(right_meta), _node_var(right_meta), s])

    # Structural edges not already carried by an RL/RR atom (e.g. edges
    # between two internal LCA nodes) still need Rbin/RbinW atoms.
    for parent, child in template.structural_edges:
        if (parent, child) in covered_struct:
            continue
        if template.node_sides[parent] is Side.LEFT:
            cq.add_atom(
                "Rbin",
                [Var("docid"), _name_var(parent), _name_var(child),
                 _node_var(parent), _node_var(child)],
            )
        else:
            cq.add_atom(
                "RbinW",
                [_name_var(parent), _name_var(child), _node_var(parent), _node_var(child)],
            )

    cq.add_atom(template.rt_relation_name(), _rt_atom_terms(template))
    return cq
