"""Query templates and isomorphism-based template matching (Section 4.1–4.2).

A :class:`QueryTemplate` is the canonical representative of an equivalence
class of reduced join graphs.  Its nodes are *meta-variables* ``var1 ...
varM``; a query belongs to the template when its reduced join graph is
isomorphic to the template graph (respecting block sides and edge kinds),
and the isomorphism provides the assignment of the query's variable names
to the template's meta-variables — which becomes the query's tuple in the
template relation ``RT``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import networkx as nx
from networkx.algorithms import isomorphism

from repro.templates.join_graph import NodeKey, Side
from repro.templates.minor import ReducedJoinGraph

#: Edge-kind attribute values in the template graphs.
STRUCTURAL = "structural"
VALUE_JOIN = "value_join"


def _reduced_to_nx(reduced: ReducedJoinGraph) -> nx.MultiDiGraph:
    """Encode a reduced join graph as a labelled directed multigraph."""
    graph = nx.MultiDiGraph()
    for node in reduced.nodes:
        graph.add_node(node, side=node[0].value)
    for parent, child in reduced.structural_edges:
        graph.add_edge(parent, child, kind=STRUCTURAL)
    for left, right in reduced.value_edges:
        graph.add_edge(left, right, kind=VALUE_JOIN)
    return graph


def _signature(graph: nx.MultiDiGraph) -> tuple:
    """A cheap isomorphism-invariant signature used to bucket templates."""
    descriptors = []
    for node, data in graph.nodes(data=True):
        out_kinds = sorted(d["kind"] for _, _, d in graph.out_edges(node, data=True))
        in_kinds = sorted(d["kind"] for _, _, d in graph.in_edges(node, data=True))
        descriptors.append((data["side"], tuple(out_kinds), tuple(in_kinds)))
    return tuple(sorted(descriptors))


def reduced_graph_signature(reduced: ReducedJoinGraph) -> tuple:
    """The isomorphism-invariant signature of a reduced join graph.

    Queries belonging to the same template always produce the same signature
    (the converse may rarely fail — the signature only buckets candidates),
    which makes it a cheap, stable *template key*: the sharded runtime hashes
    it to keep every member of a template on the same shard.
    """
    return _signature(_reduced_to_nx(reduced))


def _node_match(a: dict, b: dict) -> bool:
    return a["side"] == b["side"]


def _edge_match(a: dict, b: dict) -> bool:
    kinds_a = sorted(d["kind"] for d in a.values())
    kinds_b = sorted(d["kind"] for d in b.values())
    return kinds_a == kinds_b


@dataclass
class TemplateAssignment:
    """The result of matching one query against (or into) a template.

    Attributes
    ----------
    template:
        The template the query belongs to.
    assignment:
        Mapping from meta-variable name (``var1`` ...) to the query's
        variable name — the values stored in the query's ``RT`` tuple.
    """

    template: "QueryTemplate"
    assignment: dict[str, str]

    def rt_values(self, qid: str, window: float) -> tuple:
        """The query's tuple for the template relation ``RT``."""
        return (qid,) + tuple(
            self.assignment[mv] for mv in self.template.meta_order
        ) + (window,)


@dataclass
class QueryTemplate:
    """One query template (an equivalence class of reduced join graphs).

    Attributes
    ----------
    template_id:
        Registry-assigned numeric id; also used to name the template's
        ``RT`` relation (``RT_<id>``) and output relation (``Rout_<id>``).
    meta_order:
        Meta-variable names in canonical order (defines the ``RT`` schema).
    node_sides:
        Side of each meta-variable's node.
    structural_edges / value_edges:
        Edges between meta-variables.
    """

    template_id: int
    meta_order: list[str]
    node_sides: dict[str, Side]
    structural_edges: list[tuple[str, str]]
    value_edges: list[tuple[str, str]]
    graph: nx.MultiDiGraph = field(repr=False)
    signature: tuple = field(repr=False)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_reduced(cls, template_id: int, reduced: ReducedJoinGraph) -> tuple["QueryTemplate", "TemplateAssignment"]:
        """Create a template from the reduced join graph of its first query.

        Returns the template plus the assignment of that first query.
        """
        parents = reduced.structural_parents()

        def depth(node: NodeKey) -> int:
            d = 0
            current = node
            while current in parents:
                current = parents[current]
                d += 1
            return d

        ordered_nodes = sorted(
            reduced.nodes, key=lambda n: (n[0].value, depth(n), n[1])
        )
        meta_of: dict[NodeKey, str] = {}
        meta_order: list[str] = []
        node_sides: dict[str, Side] = {}
        for i, node in enumerate(ordered_nodes, start=1):
            meta = f"var{i}"
            meta_of[node] = meta
            meta_order.append(meta)
            node_sides[meta] = node[0]

        structural = [(meta_of[p], meta_of[c]) for p, c in reduced.structural_edges]
        value = [(meta_of[a], meta_of[b]) for a, b in reduced.value_edges]

        graph = nx.MultiDiGraph()
        for node, meta in meta_of.items():
            graph.add_node(meta, side=node[0].value)
        for p, c in structural:
            graph.add_edge(p, c, kind=STRUCTURAL)
        for a, b in value:
            graph.add_edge(a, b, kind=VALUE_JOIN)

        template = cls(
            template_id=template_id,
            meta_order=meta_order,
            node_sides=node_sides,
            structural_edges=structural,
            value_edges=value,
            graph=graph,
            signature=_signature(graph),
        )
        assignment = TemplateAssignment(
            template=template,
            assignment={meta_of[node]: node[1] for node in reduced.nodes},
        )
        return template, assignment

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def match(self, reduced: ReducedJoinGraph) -> Optional[TemplateAssignment]:
        """Match a reduced join graph against this template.

        Returns the meta-variable assignment when the graphs are isomorphic
        (respecting sides and edge kinds); ``None`` otherwise.
        """
        candidate = _reduced_to_nx(reduced)
        if _signature(candidate) != self.signature:
            return None
        matcher = isomorphism.MultiDiGraphMatcher(
            self.graph, candidate, node_match=_node_match, edge_match=_edge_match
        )
        if not matcher.is_isomorphic():
            return None
        mapping = matcher.mapping  # template meta var -> reduced NodeKey
        return TemplateAssignment(
            template=self,
            assignment={meta: node[1] for meta, node in mapping.items()},
        )

    # ------------------------------------------------------------------ #
    # structure helpers used by CQT construction
    # ------------------------------------------------------------------ #
    @property
    def num_value_joins(self) -> int:
        """Number of value-join edges in the template."""
        return len(self.value_edges)

    def structural_parent_of(self, meta: str) -> Optional[str]:
        """The structural parent of a meta-variable's node, if any."""
        for parent, child in self.structural_edges:
            if child == meta:
                return parent
        return None

    def isolated_meta_vars(self) -> list[str]:
        """Meta-variables whose nodes touch no structural edge."""
        touched = {m for edge in self.structural_edges for m in edge}
        return [m for m in self.meta_order if m not in touched]

    def rt_relation_name(self) -> str:
        """The name of this template's RT relation."""
        return f"RT_{self.template_id}"

    def rt_schema(self) -> list[str]:
        """The schema of this template's RT relation."""
        return ["qid"] + list(self.meta_order) + ["wl"]

    def out_relation_name(self) -> str:
        """The name of this template's output relation RoutT."""
        return f"Rout_{self.template_id}"

    def __repr__(self) -> str:
        return (
            f"<QueryTemplate #{self.template_id}: {len(self.meta_order)} meta vars, "
            f"{len(self.structural_edges)} structural edges, "
            f"{len(self.value_edges)} value joins>"
        )
