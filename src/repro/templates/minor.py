"""Graph-minor reduction of join graphs (paper Section 4.2).

The reduction rules:

1. Recursively remove leaf nodes that do not participate in any value join.
2. Remove nodes that are not descendants (or self) of the least common
   ancestor of the remaining leaf nodes.
3. Splice out intermediate nodes that have only one child in the modified
   graph.

The resulting graph contains only the value-join leaf nodes and the
intermediate nodes that are least common ancestors of two or more of them.
Because the structural constraints of each block were already checked by
Stage 1, evaluating only this reduced set of structural edges (plus the
value joins) preserves query results; it lets many more queries share a
template.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.templates.join_graph import JoinGraph, NodeKey, Side


@dataclass
class ReducedJoinGraph:
    """The graph minor of a join graph, ready for template matching.

    Attributes
    ----------
    nodes:
        Kept nodes (value-join participants plus their pairwise LCAs).
    structural_edges:
        Edges from each kept node's nearest kept ancestor to it.  These may
        span several original pattern edges (spliced intermediates).
    value_edges:
        The original value-join edges (unchanged by the reduction).
    """

    nodes: set[NodeKey] = field(default_factory=set)
    structural_edges: list[tuple[NodeKey, NodeKey]] = field(default_factory=list)
    value_edges: list[tuple[NodeKey, NodeKey]] = field(default_factory=list)

    def side_nodes(self, side: Side) -> list[NodeKey]:
        """Kept nodes of one side."""
        return [n for n in self.nodes if n[0] is side]

    def structural_parents(self) -> dict[NodeKey, NodeKey]:
        """Map each kept node to its kept structural parent (roots omitted)."""
        return {child: parent for parent, child in self.structural_edges}

    def isolated_nodes(self) -> list[NodeKey]:
        """Kept nodes with no incident structural edge (single-participant sides)."""
        touched: set[NodeKey] = set()
        for parent, child in self.structural_edges:
            touched.add(parent)
            touched.add(child)
        return [n for n in self.nodes if n not in touched]

    @property
    def num_value_joins(self) -> int:
        """Number of value-join edges."""
        return len(self.value_edges)

    def __repr__(self) -> str:
        return (
            f"<ReducedJoinGraph {len(self.nodes)} nodes, "
            f"{len(self.structural_edges)} structural edges, "
            f"{len(self.value_edges)} value joins>"
        )


def _reduce_side(graph: JoinGraph, side: Side) -> tuple[set[NodeKey], list[tuple[NodeKey, NodeKey]]]:
    """Apply the three reduction rules to one side of the join graph."""
    participants = graph.value_join_participants(side)
    if not participants:
        return set(), []

    kept: set[NodeKey] = set(participants)
    # Pairwise LCAs of the participants are exactly the branching nodes of
    # the Steiner tree spanning them; rule 2 + rule 3 keep precisely those.
    for i, a in enumerate(participants):
        for b in participants[i + 1:]:
            lca = graph.lca(a, b)
            if lca is not None:
                kept.add(lca)

    # Structural edge: each kept node links to its nearest kept proper ancestor.
    edges: list[tuple[NodeKey, NodeKey]] = []
    for node in sorted(kept, key=lambda n: (graph.depth(n), n[1])):
        for ancestor in graph.ancestors(node):
            if ancestor in kept:
                edges.append((ancestor, node))
                break
    return kept, edges


def reduce_join_graph(graph: JoinGraph) -> ReducedJoinGraph:
    """Compute the graph minor of ``graph`` per the paper's reduction rules."""
    reduced = ReducedJoinGraph()
    for side in (Side.LEFT, Side.RIGHT):
        nodes, edges = _reduce_side(graph, side)
        reduced.nodes.update(nodes)
        reduced.structural_edges.extend(edges)
    reduced.value_edges = list(graph.value_edges)
    return reduced
