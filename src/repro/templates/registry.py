"""The template registry: partitions queries into template equivalence classes.

``TemplateRegistry.add_query`` computes a query's join graph, reduces it
(graph minor), and either matches it against an existing template or mints a
new one.  It also maintains, per template, the relation ``RT`` (one tuple
per query) and the compiled conjunctive queries (base and materialized
forms), which is everything the Join Processor needs.
"""

from __future__ import annotations

import bisect
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.relational.conjunctive import ConjunctiveQuery
from repro.relational.relation import Relation
from repro.templates.cqt import build_cqt, build_cqt_materialized
from repro.templates.join_graph import JoinGraph
from repro.templates.minor import ReducedJoinGraph, reduce_join_graph
from repro.templates.template import QueryTemplate, TemplateAssignment
from repro.xscl.ast import XsclQuery


def _full_graph_as_reduced(join_graph: JoinGraph) -> ReducedJoinGraph:
    """Wrap a full join graph in the reduced-graph interface (ablation path)."""
    reduced = ReducedJoinGraph()
    reduced.nodes = set(join_graph.nodes)
    reduced.structural_edges = list(join_graph.structural_edges)
    reduced.value_edges = list(join_graph.value_edges)
    return reduced


def _graph_key(reduced: ReducedJoinGraph) -> tuple:
    """Hashable identity of a reduced graph (exact nodes and edge sets).

    Two reduced graphs with the same key are the same graph (edge *lists*
    are normalized by sorting — they are semantically sets), so a template
    assignment computed for one is valid for the other verbatim.
    """
    return (
        tuple(sorted((side.value, name) for side, name in reduced.nodes)),
        tuple(
            sorted(
                ((ps.value, pn), (cs.value, cn))
                for (ps, pn), (cs, cn) in reduced.structural_edges
            )
        ),
        tuple(
            sorted(
                ((ls.value, ln), (rs.value, rn))
                for (ls, ln), (rs, rn) in reduced.value_edges
            )
        ),
    )


@dataclass
class RegisteredQuery:
    """Bookkeeping for one registered query.

    ``seq`` is the registry-wide monotonic registration number; incremental
    consumers (the relevance index) sync by it, so removals never shift the
    positions they remember.
    """

    qid: str
    query: XsclQuery
    assignment: TemplateAssignment
    reduced: ReducedJoinGraph
    window: float
    seq: int = -1

    @property
    def template(self) -> QueryTemplate:
        """The template this query belongs to."""
        return self.assignment.template


@dataclass
class _TemplateEntry:
    template: QueryTemplate
    rt: Relation
    cqt: ConjunctiveQuery
    cqt_materialized: ConjunctiveQuery
    # Insertion-ordered membership set: O(1) add and remove where a list
    # would make every retraction a linear scan of the template's members.
    query_ids: dict[str, None] = field(default_factory=dict)
    # qid -> row position in ``rt``, maintained under swap-deletion, so a
    # retraction removes the query's RT tuple in O(1) instead of scanning
    # the (potentially hundred-thousand-row) relation for it.
    rt_pos: dict[str, int] = field(default_factory=dict)


class TemplateRegistry:
    """Partition registered queries into query templates and maintain RT.

    Parameters
    ----------
    use_graph_minor:
        Apply the Section 4.2 graph-minor reduction before template matching
        (the default).  Disabling it — templates are then isomorphism classes
        of the *full* join graphs — is only useful for the ablation study:
        far fewer queries share a template.
    """

    def __init__(self, use_graph_minor: bool = True) -> None:
        self.use_graph_minor = use_graph_minor
        self._entries: list[_TemplateEntry] = []
        self._by_signature: dict[tuple, list[_TemplateEntry]] = {}
        self._queries: dict[str, RegisteredQuery] = {}
        self._ordered: list[RegisteredQuery] = []
        self._seq = itertools.count()
        # Exact reduced-graph -> assignment memo: re-registering a shape the
        # registry has seen (common under churn, where the same queries
        # cancel and resubscribe) skips the isomorphism test entirely.
        # Entries are never invalidated — templates are retired in place,
        # not deleted, so a cached assignment stays correct forever.
        self._assignment_memo: dict[tuple, TemplateAssignment] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add_query(self, qid: str, query: XsclQuery) -> RegisteredQuery:
        """Register a (canonicalized) join query and return its bookkeeping record."""
        if qid in self._queries:
            raise ValueError(f"query id {qid!r} is already registered")
        join_graph = JoinGraph.from_query(query)
        if self.use_graph_minor:
            reduced = reduce_join_graph(join_graph)
        else:
            reduced = _full_graph_as_reduced(join_graph)

        assignment = self._match_or_create(reduced)
        entry = self._entry_of(assignment.template)
        window = query.join.window
        entry.rt_pos[qid] = len(entry.rt.rows)
        entry.rt.insert(assignment.rt_values(qid, window))
        entry.query_ids[qid] = None

        record = RegisteredQuery(
            qid=qid,
            query=query,
            assignment=assignment,
            reduced=reduced,
            window=window,
            seq=next(self._seq),
        )
        self._queries[qid] = record
        self._ordered.append(record)
        return record

    def remove_query(self, qid: str) -> RegisteredQuery:
        """Retract a registered query and return its (former) record.

        The query's ``RT`` tuple is deleted and its template's membership
        shrinks; a template left with no member queries is *retired* — it
        keeps its id (ids index internal tables) and is revived in place if
        an equivalent query registers again, but it no longer counts toward
        :attr:`num_templates` and no longer appears in :attr:`templates`.
        Raises :class:`KeyError` for unknown query ids.
        """
        record = self._queries.pop(qid)
        # _ordered is sorted by seq, so the record's position is a binary
        # search away; list.remove would compare whole dataclasses linearly.
        index = bisect.bisect_left(self._ordered, record.seq, key=lambda r: r.seq)
        del self._ordered[index]
        entry = self._entries[record.template.template_id]
        del entry.query_ids[qid]
        # O(1) RT removal: swap-delete at the tracked position, then repoint
        # the position map at whichever row was swapped into the hole.
        position = entry.rt_pos.pop(qid)
        entry.rt.swap_delete_at(position)
        if position < len(entry.rt.rows):
            moved_qid = entry.rt.rows[position][0]
            entry.rt_pos[moved_qid] = position
        return record

    def __contains__(self, qid: str) -> bool:
        return qid in self._queries

    def _match_or_create(self, reduced: ReducedJoinGraph) -> TemplateAssignment:
        from repro.templates.template import _reduced_to_nx, _signature

        key = _graph_key(reduced)
        cached = self._assignment_memo.get(key)
        if cached is not None:
            return cached

        signature = _signature(_reduced_to_nx(reduced))
        for entry in self._by_signature.get(signature, ()):
            assignment = entry.template.match(reduced)
            if assignment is not None:
                self._assignment_memo[key] = assignment
                return assignment

        template, assignment = QueryTemplate.from_reduced(len(self._entries), reduced)
        entry = _TemplateEntry(
            template=template,
            rt=Relation(template.rt_schema(), name=template.rt_relation_name()),
            cqt=build_cqt(template),
            cqt_materialized=build_cqt_materialized(template),
        )
        self._entries.append(entry)
        self._by_signature.setdefault(template.signature, []).append(entry)
        self._assignment_memo[key] = assignment
        return assignment

    def _entry_of(self, template: QueryTemplate) -> _TemplateEntry:
        return self._entries[template.template_id]

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #
    @property
    def templates(self) -> list[QueryTemplate]:
        """All *live* templates (with at least one member query), in creation order."""
        return [e.template for e in self._entries if e.query_ids]

    @property
    def num_templates(self) -> int:
        """Number of distinct live templates."""
        return sum(1 for e in self._entries if e.query_ids)

    @property
    def num_retired_templates(self) -> int:
        """Templates whose member queries were all cancelled (kept for revival)."""
        return sum(1 for e in self._entries if not e.query_ids)

    @property
    def num_queries(self) -> int:
        """Number of registered queries."""
        return len(self._queries)

    def queries(self) -> list[RegisteredQuery]:
        """All registered query records."""
        return list(self._queries.values())

    def records(self, start: int = 0) -> list[RegisteredQuery]:
        """Registered query records in registration order, from index ``start``.

        Positional access over the *current* records; under retraction the
        positions shift, so incremental consumers should use
        :meth:`records_since` (sync by the stable ``seq`` stamp) instead.
        """
        return self._ordered[start:]

    def records_since(self, seq: int) -> list[RegisteredQuery]:
        """Records with registration number strictly greater than ``seq``.

        ``_ordered`` is sorted by ``seq`` (appends are monotonic, removals
        preserve order), so this is a binary search plus the tail slice.
        Incremental consumers (the Join Processor's relevance index)
        remember the last ``seq`` they consumed; records removed before
        being consumed simply never show up.
        """
        start = bisect.bisect_right(self._ordered, seq, key=lambda r: r.seq)
        return self._ordered[start:]

    def query(self, qid: str) -> RegisteredQuery:
        """The record of one registered query."""
        return self._queries[qid]

    def rt_relation(self, template: QueryTemplate) -> Relation:
        """The RT relation of ``template`` (one tuple per member query)."""
        return self._entry_of(template).rt

    def cqt(self, template: QueryTemplate, materialized: bool = False) -> ConjunctiveQuery:
        """The compiled conjunctive query of ``template``."""
        entry = self._entry_of(template)
        return entry.cqt_materialized if materialized else entry.cqt

    def queries_of(self, template: QueryTemplate) -> list[str]:
        """Query ids belonging to ``template``."""
        return list(self._entry_of(template).query_ids)

    def has_queries(self, template: QueryTemplate) -> bool:
        """Whether ``template`` has any member query (O(1); no list copy)."""
        return bool(self._entry_of(template).query_ids)

    def template_sizes(self) -> dict[int, int]:
        """Mapping template id -> number of member queries."""
        return {e.template.template_id: len(e.query_ids) for e in self._entries}
