"""Join graphs of XSCL queries (paper Section 4.1, Figure 4).

A join graph has one node per bound variable per query block.  Nodes of the
same block are connected by *structural edges* following the variable tree
pattern (each bound variable linked to its closest bound ancestor); the
equality predicates contribute *value-join edges* between the two blocks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.xscl.ast import XsclQuery
from repro.xscl.errors import XsclSemanticsError


class Side(enum.Enum):
    """Which query block a join-graph node belongs to."""

    LEFT = "L"
    RIGHT = "R"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: A join-graph node: the block side plus the variable name.
NodeKey = tuple[Side, str]


@dataclass
class JoinGraph:
    """The join graph of one XSCL query.

    Attributes
    ----------
    nodes:
        All nodes, as ``(side, variable)`` keys.
    structural_edges:
        Parent → child edges within a block (closest bound ancestor).
    value_edges:
        Value-join edges, always oriented left-block node → right-block node.
    parents:
        For each node, its structural parent (or ``None`` for block roots).
    """

    nodes: set[NodeKey] = field(default_factory=set)
    structural_edges: list[tuple[NodeKey, NodeKey]] = field(default_factory=list)
    value_edges: list[tuple[NodeKey, NodeKey]] = field(default_factory=list)
    parents: dict[NodeKey, NodeKey | None] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_query(cls, query: XsclQuery) -> "JoinGraph":
        """Build the join graph of an inter-document XSCL query."""
        if not query.is_join_query:
            raise XsclSemanticsError("join graphs are only defined for join queries")
        graph = cls()
        for side, block in ((Side.LEFT, query.left), (Side.RIGHT, query.right)):
            pattern = block.pattern
            for var in pattern.variables():
                key = (side, var)
                graph.nodes.add(key)
                parent_var = pattern.parent_of(var)
                parent_key = (side, parent_var) if parent_var is not None else None
                graph.parents[key] = parent_key
                if parent_key is not None:
                    graph.structural_edges.append((parent_key, key))
        for pred in query.join.predicates:
            left_key = (Side.LEFT, pred.left_var)
            right_key = (Side.RIGHT, pred.right_var)
            if left_key not in graph.nodes or right_key not in graph.nodes:
                raise XsclSemanticsError(
                    f"value join {pred} refers to variables not bound in the query blocks"
                )
            graph.value_edges.append((left_key, right_key))
        return graph

    # ------------------------------------------------------------------ #
    # queries over the graph
    # ------------------------------------------------------------------ #
    def side_nodes(self, side: Side) -> list[NodeKey]:
        """All nodes of one block side."""
        return [n for n in self.nodes if n[0] is side]

    def value_join_participants(self, side: Side) -> list[NodeKey]:
        """Nodes of ``side`` that appear in at least one value-join edge."""
        out: list[NodeKey] = []
        seen: set[NodeKey] = set()
        for left, right in self.value_edges:
            node = left if side is Side.LEFT else right
            if node not in seen:
                seen.add(node)
                out.append(node)
        return out

    def ancestors(self, node: NodeKey) -> Iterator[NodeKey]:
        """Proper ancestors of ``node`` along structural parent links, nearest first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def depth(self, node: NodeKey) -> int:
        """Structural depth of a node (block root variables have depth 0)."""
        return sum(1 for _ in self.ancestors(node))

    def lca(self, a: NodeKey, b: NodeKey) -> NodeKey | None:
        """Least common ancestor of two nodes of the *same* side (or ``None``)."""
        if a[0] is not b[0]:
            return None
        chain_a = [a] + list(self.ancestors(a))
        chain_b_set = {b} | set(self.ancestors(b))
        for node in chain_a:
            if node in chain_b_set:
                return node
        return None

    @property
    def num_value_joins(self) -> int:
        """Number of value-join edges."""
        return len(self.value_edges)

    def __repr__(self) -> str:
        return (
            f"<JoinGraph {len(self.nodes)} nodes, "
            f"{len(self.structural_edges)} structural edges, "
            f"{len(self.value_edges)} value joins>"
        )
