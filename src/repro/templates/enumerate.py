"""Exhaustive enumeration of query templates (paper Table 3, Figure 6).

The number of distinct query templates depends only on the maximum number of
value joins per query and on the document schema depth — not on the number
of registered queries.  This module enumerates, for a given number of value
joins, every structurally distinct way a query can place its value-join
endpoints on a flat (two-level) or complex (three-level) document schema,
builds a representative XSCL query for each, and counts the distinct
templates via the :class:`~repro.templates.registry.TemplateRegistry`.

The construction enumerates, per block side:

* a set partition of the value-join endpoint slots into leaf nodes (several
  predicates may share a leaf), and
* for three-level schemas, a set partition of those leaves into intermediate
  groups (which determines the least-common-ancestor structure).

Every template arises from at least one such configuration, so counting the
distinct templates over all configurations is exact.
"""

from __future__ import annotations

from typing import Iterator, Literal

from repro.templates.registry import TemplateRegistry
from repro.xpath.ast import parse_path
from repro.xpath.pattern import PatternNode, VariableTreePattern
from repro.xscl.ast import (
    INFINITE_WINDOW,
    JoinOperator,
    JoinSpec,
    QueryBlock,
    ValueJoinPredicate,
    XsclQuery,
)

SchemaKind = Literal["flat", "complex"]


def set_partitions(items: list) -> Iterator[list[list]]:
    """Yield all set partitions of ``items`` (each partition is a list of blocks)."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        # Put ``first`` into each existing block...
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        # ...or into a new block of its own.
        yield [[first]] + partition


def _build_block(
    side: str,
    slot_to_leaf: dict[int, int],
    leaf_groups: list[list[int]],
    schema_kind: SchemaKind,
) -> tuple[QueryBlock, dict[int, str]]:
    """Build one query block realizing the given endpoint placement.

    Returns the block plus a mapping from endpoint slot to the leaf variable
    name bound to it.
    """
    root = PatternNode(f"{side}_root", parse_path("//doc"))
    leaf_var_of: dict[int, str] = {}

    if schema_kind == "flat":
        for leaf_index in sorted(set(slot_to_leaf.values())):
            var = f"{side}_leaf{leaf_index}"
            root.add_child(PatternNode(var, parse_path(f".//f{leaf_index}")))
            for slot, leaf in slot_to_leaf.items():
                if leaf == leaf_index:
                    leaf_var_of[slot] = var
    else:
        for g, members in enumerate(leaf_groups):
            group_node = root.add_child(
                PatternNode(f"{side}_grp{g}", parse_path(f".//g{g}"))
            )
            for leaf_index in sorted(members):
                var = f"{side}_leaf{leaf_index}"
                group_node.add_child(PatternNode(var, parse_path(f".//f{leaf_index}")))
                for slot, leaf in slot_to_leaf.items():
                    if leaf == leaf_index:
                        leaf_var_of[slot] = var

    pattern = VariableTreePattern(root=root, stream="S")
    return QueryBlock(pattern=pattern), leaf_var_of


def _side_configurations(
    num_value_joins: int, schema_kind: SchemaKind
) -> Iterator[tuple[dict[int, int], list[list[int]]]]:
    """Yield (slot→leaf map, leaf grouping) configurations for one block side."""
    slots = list(range(num_value_joins))
    for leaf_partition in set_partitions(slots):
        slot_to_leaf = {}
        for leaf_index, block in enumerate(leaf_partition):
            for slot in block:
                slot_to_leaf[slot] = leaf_index
        leaves = list(range(len(leaf_partition)))
        if schema_kind == "flat":
            yield slot_to_leaf, [leaves]
        else:
            for grouping in set_partitions(leaves):
                yield slot_to_leaf, grouping


def enumerate_template_queries(
    num_value_joins: int, schema_kind: SchemaKind = "flat"
) -> Iterator[XsclQuery]:
    """Yield one representative XSCL query per endpoint-placement configuration."""
    if num_value_joins < 1:
        raise ValueError("num_value_joins must be at least 1")
    for left_map, left_groups in _side_configurations(num_value_joins, schema_kind):
        left_block, left_vars = _build_block("L", left_map, left_groups, schema_kind)
        for right_map, right_groups in _side_configurations(num_value_joins, schema_kind):
            right_block, right_vars = _build_block("R", right_map, right_groups, schema_kind)
            predicates = tuple(
                ValueJoinPredicate(left_vars[slot], right_vars[slot])
                for slot in range(num_value_joins)
            )
            # Two slots mapping to the same (left leaf, right leaf) pair would
            # be a duplicated predicate — such a query really has fewer value
            # joins and is counted there instead.
            if len(set(predicates)) != num_value_joins:
                continue
            yield XsclQuery(
                left=left_block,
                right=right_block,
                join=JoinSpec(
                    operator=JoinOperator.FOLLOWED_BY,
                    predicates=predicates,
                    window=INFINITE_WINDOW,
                ),
            )


def count_templates(num_value_joins: int, schema_kind: SchemaKind = "flat") -> int:
    """Count the distinct query templates for queries with ``num_value_joins`` joins.

    Reproduces one cell of Table 3 (``#QT(flat schema)`` or
    ``#QT(complex schema)``).
    """
    registry = TemplateRegistry()
    for i, query in enumerate(enumerate_template_queries(num_value_joins, schema_kind)):
        registry.add_query(f"enum{i}", query)
    return registry.num_templates


def template_count_table(max_value_joins: int = 4) -> list[dict[str, int]]:
    """Reproduce Table 3: template counts for 1..max_value_joins value joins."""
    rows = []
    for j in range(1, max_value_joins + 1):
        rows.append(
            {
                "value_joins": j,
                "templates_flat": count_templates(j, "flat"),
                "templates_complex": count_templates(j, "complex"),
            }
        )
    return rows
