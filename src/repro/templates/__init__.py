"""Query templates — the key to sharing join work across queries (Sections 4.1–4.2).

An XSCL query's *join graph* combines the variable tree patterns of its two
blocks (structural edges) with its equality predicates (value-join edges).
Its *query template* is the isomorphism class of the graph-minor reduction
of that join graph.  All queries belonging to the same template are
evaluated at once by a single relational conjunctive query (``CQT``).

This package provides:

* :mod:`~repro.templates.join_graph` — join graphs of XSCL queries.
* :mod:`~repro.templates.minor` — the graph-minor reduction rules.
* :mod:`~repro.templates.template` — template objects and isomorphism
  matching (meta-variable assignment).
* :mod:`~repro.templates.registry` — the template registry: partitions the
  query set into template equivalence classes and maintains the per-template
  relation ``RT``.
* :mod:`~repro.templates.cqt` — construction of the per-template conjunctive
  query, in both the base form (Section 4.4) and the view-materialized form
  (Section 5).
* :mod:`~repro.templates.enumerate` — exhaustive enumeration of the possible
  templates for a given number of value joins (Table 3).
"""

from repro.templates.join_graph import JoinGraph, Side
from repro.templates.minor import ReducedJoinGraph, reduce_join_graph
from repro.templates.template import QueryTemplate, TemplateAssignment
from repro.templates.registry import TemplateRegistry
from repro.templates.cqt import build_cqt, build_cqt_materialized, RELATION_SCHEMAS
from repro.templates.enumerate import count_templates, enumerate_template_queries

__all__ = [
    "JoinGraph",
    "Side",
    "ReducedJoinGraph",
    "reduce_join_graph",
    "QueryTemplate",
    "TemplateAssignment",
    "TemplateRegistry",
    "build_cqt",
    "build_cqt_materialized",
    "RELATION_SCHEMAS",
    "count_templates",
    "enumerate_template_queries",
]
