"""Million-user stress subsystem: scale the broker, measure the tails.

:func:`run_stress` ramps a broker to 10⁵–10⁶ live subscriptions over the
DBLP-style workload (:mod:`repro.workloads.dblp`) and reports p50/p95/p99
publish latency and delivery lag per phase (ramp, steady, burst, churn).
``benchmarks/bench_million_user.py`` wraps it as the committed
``BENCH_million_user.json`` experiment.
"""

from repro.stress.harness import StressConfig, run_stress

__all__ = ["StressConfig", "run_stress"]
