"""The million-user stress harness: ramp, steady, burst and churn phases.

:func:`run_stress` drives one broker through the lifecycle a large pub/sub
deployment actually sees:

* **ramp** — subscribe in chunks up to the target population, publishing a
  probe batch between chunks (the per-chunk wall times expose any
  super-linear per-subscribe cost);
* **steady** — single-document publishes against the full population (the
  interactive latency path);
* **burst** — ``publish_many`` batches (the high-rate ingestion path);
* **churn** — interleaved cancel + resubscribe cycles with publishes mixed
  in (the retraction path at scale).

Latency tails come from the broker's metrics registry
(``RuntimeConfig(metrics=True)`` is required): per phase, the harness
reports p50/p95/p99 publish latency and delivery lag computed from
snapshot *deltas* (:func:`repro.metrics.snapshot_delta`), so each phase's
distribution is isolated even though the registry accumulates.

The workload is the DBLP-style corpus of :mod:`repro.workloads.dblp`:
venues as streams, Zipf venue/author reuse, a handful of subscription
shapes sharing a handful of templates.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.config import RuntimeConfig
from repro.metrics import snapshot_delta
from repro.workloads.dblp import (
    DblpWorkloadConfig,
    ZipfSampler,
    generate_article,
    generate_dblp_subscription,
)

__all__ = ["StressConfig", "run_stress"]


@dataclass
class StressConfig:
    """Parameters of one stress run.

    The defaults are the headline configuration: 10⁵ subscriptions with
    every phase exercised.  CI smoke runs shrink every knob (see
    ``benchmarks/bench_million_user.py``); scaling ``subscriptions`` to
    10⁶ is a matter of patience, not code.
    """

    subscriptions: int = 100_000
    runtime: Optional[RuntimeConfig] = None
    workload: DblpWorkloadConfig = field(default_factory=DblpWorkloadConfig)
    ramp_chunk: int = 10_000
    ramp_probe_documents: int = 10
    steady_documents: int = 300
    burst_count: int = 10
    burst_size: int = 100
    churn_cycles: int = 500
    churn_publish_every: int = 25
    seed: int = 23

    def resolve_runtime(self) -> RuntimeConfig:
        """The broker config (metrics forced on — the harness needs tails)."""
        config = self.runtime
        if config is None:
            config = RuntimeConfig(construct_outputs=False)
        if not config.metrics:
            config = config.replace(metrics=True)
        return config


class _Corpus:
    """A continuous article stream plus a subscription generator."""

    def __init__(self, config: DblpWorkloadConfig, seed: int):
        self.config = config
        self.rng = random.Random(seed)
        self.venues = ZipfSampler(config.num_venues, config.venue_theta, self.rng)
        self.authors = ZipfSampler(config.num_authors, config.author_theta, self.rng)
        self.doc_sequence = 0
        self.sub_sequence = 0

    def next_document(self):
        document = generate_article(
            self.config, self.doc_sequence, self.rng, self.venues, self.authors
        )
        self.doc_sequence += 1
        return document

    def next_documents(self, count: int) -> list:
        return [self.next_document() for _ in range(count)]

    def next_subscription(self) -> str:
        query = generate_dblp_subscription(
            self.config, self.sub_sequence, self.rng, self.venues
        )
        self.sub_sequence += 1
        return query


def _phase_summary(delta: dict, seconds: float) -> dict:
    """Compress one phase's metrics delta into the reported summary."""
    histograms = delta.get("histograms", {})
    counters = delta.get("counters", {})

    def latency(name: str) -> Optional[dict]:
        snap = histograms.get(name)
        if not snap or not snap.get("count"):
            return None
        return {
            key: snap[key]
            for key in ("count", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms")
        }

    return {
        "seconds": round(seconds, 3),
        "documents_published": counters.get("documents_published", 0),
        "results_delivered": counters.get("results_delivered", 0),
        "publish_latency": latency("publish_latency"),
        "publish_batch_latency": latency("publish_batch_latency"),
        "delivery_lag": latency("delivery_lag"),
    }


def run_stress(stress: Optional[StressConfig] = None) -> dict:
    """Run the four-phase stress workload; returns the JSON-safe report.

    The report carries, per phase, wall time, document/delivery counts and
    the p50/p95/p99/max publish-latency and delivery-lag tails — plus the
    ramp's per-chunk subscribe timings (flat = per-subscribe cost is
    O(1) in the live population) and the broker's final merged metrics
    snapshot.
    """
    stress = stress if stress is not None else StressConfig()
    from repro import open_broker  # deferred: repro imports this module's package

    corpus = _Corpus(stress.workload, stress.seed)
    broker = open_broker(stress.resolve_runtime())
    phases: dict[str, dict] = {}
    live: list[str] = []
    sid_counter = 0
    try:
        # ------------------------------------------------------------- ramp
        chunk_seconds: list[float] = []
        chunk_size = max(1, min(stress.ramp_chunk, stress.subscriptions))
        previous = broker.metrics_snapshot()
        phase_start = time.perf_counter()
        while len(live) < stress.subscriptions:
            take = min(chunk_size, stress.subscriptions - len(live))
            chunk_start = time.perf_counter()
            for _ in range(take):
                sid = f"stress{sid_counter}"
                sid_counter += 1
                broker.subscribe(corpus.next_subscription(), subscription_id=sid)
                live.append(sid)
            chunk_seconds.append(round(time.perf_counter() - chunk_start, 3))
            if stress.ramp_probe_documents:
                broker.publish_many(corpus.next_documents(stress.ramp_probe_documents))
        ramp_seconds = time.perf_counter() - phase_start
        snapshot = broker.metrics_snapshot()
        phases["ramp"] = _phase_summary(
            snapshot_delta(previous, snapshot), ramp_seconds
        )
        phases["ramp"]["chunk_seconds"] = chunk_seconds
        phases["ramp"]["subscriptions"] = len(live)
        previous = snapshot

        # ----------------------------------------------------------- steady
        phase_start = time.perf_counter()
        for _ in range(stress.steady_documents):
            broker.publish(corpus.next_document())
        steady_seconds = time.perf_counter() - phase_start
        snapshot = broker.metrics_snapshot()
        phases["steady"] = _phase_summary(
            snapshot_delta(previous, snapshot), steady_seconds
        )
        previous = snapshot

        # ------------------------------------------------------------ burst
        phase_start = time.perf_counter()
        for _ in range(stress.burst_count):
            broker.publish_many(corpus.next_documents(stress.burst_size))
        burst_seconds = time.perf_counter() - phase_start
        snapshot = broker.metrics_snapshot()
        phases["burst"] = _phase_summary(
            snapshot_delta(previous, snapshot), burst_seconds
        )
        previous = snapshot

        # ------------------------------------------------------------ churn
        churn_rng = random.Random(stress.seed + 1)
        phase_start = time.perf_counter()
        for cycle in range(stress.churn_cycles):
            if live:
                # Swap-pop a random live subscription and retract it.
                index = churn_rng.randrange(len(live))
                victim = live[index]
                live[index] = live[-1]
                live.pop()
                broker.cancel(victim)
            sid = f"stress{sid_counter}"
            sid_counter += 1
            broker.subscribe(corpus.next_subscription(), subscription_id=sid)
            live.append(sid)
            if stress.churn_publish_every and cycle % stress.churn_publish_every == 0:
                broker.publish(corpus.next_document())
        churn_seconds = time.perf_counter() - phase_start
        snapshot = broker.metrics_snapshot()
        phases["churn"] = _phase_summary(
            snapshot_delta(previous, snapshot), churn_seconds
        )
        phases["churn"]["cycles"] = stress.churn_cycles

        stats = broker.stats()
        return {
            "live_subscriptions": len(live),
            "documents_published": corpus.doc_sequence,
            "num_templates": stats["engine_stats"].get("num_templates"),
            "phases": phases,
            "final_metrics": snapshot,
        }
    finally:
        broker.close()
