"""The session façade: one entry point, whatever the runtime topology.

:func:`open_broker` is the blessed way to start a publish/subscribe
session.  It takes a :class:`~repro.config.RuntimeConfig` (or field
overrides, or nothing) and returns a context-managed broker — the unsharded
:class:`~repro.pubsub.Broker` or the sharded
:class:`~repro.runtime.ShardedBroker`, depending on ``config.shards`` —
making the broker flavor an implementation detail instead of a
``Broker.__new__`` trick:

.. code-block:: python

    import repro

    with repro.open_broker(repro.RuntimeConfig.throughput(shards=8)) as broker:
        sub = broker.subscribe("...", sink=repro.QueueSink())
        broker.publish_many(documents)
        sub.cancel()          # true retraction: engine state shrinks
"""

from __future__ import annotations

from typing import Optional, Union

from repro.config import RuntimeConfig

__all__ = ["open_broker"]


def open_broker(
    config: Union[RuntimeConfig, str, None] = None,
    resume_from: Optional[str] = None,
    **overrides,
):
    """Open a publish/subscribe session for ``config``.

    ``config`` may be a :class:`~repro.config.RuntimeConfig`, an engine
    name string (shorthand for ``RuntimeConfig(engine=...)``), or ``None``
    for the defaults.  Keyword ``overrides`` are first-class (no
    deprecation involved) and are applied on top via
    :meth:`RuntimeConfig.replace` — ``open_broker(shards=4)`` is the
    concise spelling of ``open_broker(RuntimeConfig(shards=4))``.

    ``resume_from`` recovers a crashed/closed session from the SQLite
    stores under the given directory (a previous session's
    ``storage_path``): the subscription registry is replayed, join state,
    documents, variable catalog and counters are restored, and the
    returned broker is match-equivalent on future documents to one that
    never restarted (see :mod:`repro.storage.recovery`).  With ``config``
    ``None`` the crashed session's persisted config is reused; delivery
    callbacks and sinks are process-local and must be re-attached via
    ``broker.subscription(sid)``.

    Returns a :class:`repro.pubsub.Broker` for ``shards == 1`` and a
    :class:`repro.runtime.ShardedBroker` otherwise; both support the
    context-manager protocol (``close()`` flushes every subscription's
    delivery sinks, flushes and closes the state stores, and shuts down
    any shard executor).
    """
    if resume_from is not None:
        from repro.storage.recovery import resume_broker

        return resume_broker(config, resume_from, overrides)
    if config is None:
        config = RuntimeConfig()
    elif isinstance(config, str):
        config = RuntimeConfig(engine=config)
    elif not isinstance(config, RuntimeConfig):
        raise TypeError(
            f"open_broker expects a RuntimeConfig or an engine name, "
            f"got {type(config).__name__}"
        )
    if overrides:
        config = config.replace(**overrides)
    if config.shards > 1:
        from repro.runtime.sharded_broker import ShardedBroker

        return ShardedBroker(config)
    from repro.pubsub.broker import Broker

    return Broker(config)
