"""The session façade: one entry point, whatever the runtime topology.

:func:`open_broker` is the blessed way to start a publish/subscribe
session.  It takes a :class:`~repro.config.RuntimeConfig` (or field
overrides, or nothing) and returns a context-managed broker — the unsharded
:class:`~repro.pubsub.Broker` or the sharded
:class:`~repro.runtime.ShardedBroker`, depending on ``config.shards`` —
making the broker flavor an implementation detail instead of a
``Broker.__new__`` trick:

.. code-block:: python

    import repro

    with repro.open_broker(repro.RuntimeConfig.throughput(shards=8)) as broker:
        sub = broker.subscribe("...", sink=repro.QueueSink())
        broker.publish_many(documents)
        sub.cancel()          # true retraction: engine state shrinks
"""

from __future__ import annotations

from typing import Union

from repro.config import RuntimeConfig

__all__ = ["open_broker"]


def open_broker(config: Union[RuntimeConfig, str, None] = None, **overrides):
    """Open a publish/subscribe session for ``config``.

    ``config`` may be a :class:`~repro.config.RuntimeConfig`, an engine
    name string (shorthand for ``RuntimeConfig(engine=...)``), or ``None``
    for the defaults.  Keyword ``overrides`` are first-class (no
    deprecation involved) and are applied on top via
    :meth:`RuntimeConfig.replace` — ``open_broker(shards=4)`` is the
    concise spelling of ``open_broker(RuntimeConfig(shards=4))``.

    Returns a :class:`repro.pubsub.Broker` for ``shards == 1`` and a
    :class:`repro.runtime.ShardedBroker` otherwise; both support the
    context-manager protocol (``close()`` flushes every subscription's
    delivery sinks and shuts down any shard executor).
    """
    if config is None:
        config = RuntimeConfig()
    elif isinstance(config, str):
        config = RuntimeConfig(engine=config)
    elif not isinstance(config, RuntimeConfig):
        raise TypeError(
            f"open_broker expects a RuntimeConfig or an engine name, "
            f"got {type(config).__name__}"
        )
    if overrides:
        config = config.replace(**overrides)
    if config.shards > 1:
        from repro.runtime.sharded_broker import ShardedBroker

        return ShardedBroker(config)
    from repro.pubsub.broker import Broker

    return Broker(config)
