"""Repository-level pytest configuration.

Makes the ``src`` layout importable without installation, so ``pytest`` works
both before and after ``pip install -e .``.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
