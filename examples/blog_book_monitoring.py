#!/usr/bin/env python3
"""Blog/book monitoring: hundreds of subscriptions over a mixed stream.

This example mirrors the paper's motivating scenario: a message broker
monitors a stream that interleaves book announcements and blog articles and
serves many subscribers at once:

* per-author subscriptions — "a book by <author> followed by a blog post by
  the same author" (one query per tracked author, all sharing one template);
* cross-posting detection — two blog posts with the same author and title;
* topic follow-ups — a book followed by a blog post in the same category.

It then compares the MMQJP engine with the sequential baseline on the exact
same workload and prints the per-engine processing cost.

Run with::

    python examples/blog_book_monitoring.py
"""

import random
import time

from repro import MMQJPEngine, RuntimeConfig, SequentialEngine, XmlDocument, element

AUTHORS = [f"Author {i}" for i in range(25)]
CATEGORIES = ["Programming", "Databases", "Streams", "Web", "XML"]
TITLES = [f"Book Title {i}" for i in range(40)]


def book_announcement(rng: random.Random, docid: str, timestamp: float) -> XmlDocument:
    """A random book announcement."""
    return XmlDocument(
        element(
            "book",
            element("author", text=rng.choice(AUTHORS)),
            element("title", text=rng.choice(TITLES)),
            element("category", text=rng.choice(CATEGORIES)),
        ),
        docid=docid,
        timestamp=timestamp,
    )


def blog_article(rng: random.Random, docid: str, timestamp: float) -> XmlDocument:
    """A random blog article."""
    return XmlDocument(
        element(
            "blog",
            element("author", text=rng.choice(AUTHORS)),
            element("title", text=rng.choice(TITLES)),
            element("category", text=rng.choice(CATEGORIES)),
        ),
        docid=docid,
        timestamp=timestamp,
    )


def build_subscriptions() -> list[tuple[str, str]]:
    """(qid, XSCL text) pairs for every subscriber."""
    subscriptions: list[tuple[str, str]] = []
    # Author-follow subscriptions: same shape, hence a single query template.
    for i, _author in enumerate(AUTHORS):
        subscriptions.append(
            (
                f"author-follow-{i}",
                "S//book->b[.//author->ba][.//title->bt] "
                "FOLLOWED BY{ba=ga AND bt=gt, 50} "
                "S//blog->g[.//author->ga][.//title->gt]",
            )
        )
    subscriptions.append(
        (
            "cross-posting",
            "S//blog->g[.//author->ga][.//title->gt] "
            "FOLLOWED BY{ga=ga AND gt=gt, 50} "
            "S//blog->g[.//author->ga][.//title->gt]",
        )
    )
    subscriptions.append(
        (
            "topic-follow-up",
            "S//book->b[.//author->ba][.//category->bc] "
            "FOLLOWED BY{ba=ga AND bc=gc, 50} "
            "S//blog->g[.//author->ga][.//category->gc]",
        )
    )
    return subscriptions


def generate_stream(num_documents: int, seed: int = 17) -> list[XmlDocument]:
    """An interleaved stream of announcements and articles."""
    rng = random.Random(seed)
    stream = []
    for i in range(num_documents):
        make = book_announcement if rng.random() < 0.4 else blog_article
        stream.append(make(rng, docid=f"doc{i}", timestamp=float(i + 1)))
    return stream


def run(engine, subscriptions, stream) -> tuple[int, float]:
    for qid, text in subscriptions:
        engine.register_query(text, qid=qid)
    start = time.perf_counter()
    total = sum(len(engine.process_document(doc)) for doc in stream)
    return total, time.perf_counter() - start


def main() -> None:
    subscriptions = build_subscriptions()
    print(f"{len(subscriptions)} subscriptions registered; streaming 120 documents ...\n")

    results = {}
    for name, engine in (
        ("mmqjp", MMQJPEngine(RuntimeConfig(store_documents=False))),
        ("sequential", SequentialEngine(RuntimeConfig(store_documents=False))),
    ):
        matches, elapsed = run(engine, subscriptions, generate_stream(120))
        results[name] = (matches, elapsed)
        templates = getattr(engine, "num_templates", "n/a")
        print(
            f"{name:>10}: {matches:5d} matches in {elapsed * 1000:8.1f} ms "
            f"(query templates: {templates})"
        )

    assert results["mmqjp"][0] == results["sequential"][0], "engines must agree"
    speedup = results["sequential"][1] / results["mmqjp"][1]
    print(f"\nMMQJP processed the same workload {speedup:.1f}x faster than the baseline.")


if __name__ == "__main__":
    main()
