#!/usr/bin/env python3
"""RSS feed monitoring on the sharded runtime: Section 6.3 at example scale.

A simulated RSS/Atom feed stream (several channels, repeated titles) is
published into a **sharded** broker while a mix of hand-written and
generated subscriptions watch for correlated items:

* items cross-posted to the same channel within a window,
* different channels reusing the same title (possible syndication),
* plus a few hundred randomly generated inter-item join queries, as in the
  paper's throughput experiment.

The subscriptions are partitioned template-cohesively across four engine
shards — ``repro.open_broker`` with a sharded :class:`repro.RuntimeConfig`
routes to :class:`repro.runtime.ShardedBroker` — and the stream is ingested
in batches through ``publish_many``.  At the end, the generated
subscriptions are *cancelled*, showing that retraction actually shrinks the
per-shard query counts and join state.

Run with::

    python examples/rss_feed_monitoring.py
"""

import time

from repro import RuntimeConfig, open_broker
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream

SAME_CHANNEL = (
    "S//item->i[.//channel_url->c] "
    "FOLLOWED BY{c=c, 40} "
    "S//item->i[.//channel_url->c]"
)
SYNDICATED_TITLE = (
    "S//item->i[.//title->t] "
    "FOLLOWED BY{t=t, INF} "
    "S//item->i[.//title->t]"
)

BATCH_SIZE = 25


def main() -> None:
    config = RuntimeConfig(
        engine="mmqjp-vm",
        view_cache_size=1024,
        construct_outputs=False,
        shards=4,
        partitioner="hash",
        executor="threads",
        store_documents=False,
    )
    broker = open_broker(config)

    same_channel = broker.subscribe(SAME_CHANNEL, subscription_id="same-channel")
    syndicated = broker.subscribe(SYNDICATED_TITLE, subscription_id="syndicated-title")
    for i, query in enumerate(generate_rss_queries(200, seed=23)):
        broker.subscribe(query, subscription_id=f"generated-{i}")

    stream_config = RssStreamConfig(num_items=150, num_channels=12, title_pool_size=60)
    documents = list(generate_rss_stream(stream_config))
    print(
        f"publishing {stream_config.num_items} feed items from "
        f"{stream_config.num_channels} channels to {len(broker.subscriptions)} "
        f"subscriptions on {broker.num_shards} shards ..."
    )

    start = time.perf_counter()
    deliveries = []
    for offset in range(0, len(documents), BATCH_SIZE):
        deliveries.extend(broker.publish_many(documents[offset : offset + BATCH_SIZE]))
    elapsed = time.perf_counter() - start

    throughput = stream_config.num_items / elapsed
    print(f"\nprocessed {stream_config.num_items} items in {elapsed:.2f}s "
          f"({throughput:.1f} events/second, batches of {BATCH_SIZE})")
    print(f"total deliveries: {len(deliveries)}")
    print(f"  same-channel pairs     : {same_channel.num_results}")
    print(f"  syndicated-title pairs : {syndicated.num_results}")

    stats = broker.stats()
    merged = stats["engine_stats"]
    print(f"  query templates        : {merged['num_templates']}")
    print(f"  join-state documents   : {merged['state_documents']}")
    print("  per shard              :")
    for shard in stats["per_shard"]:
        print(
            f"    shard {shard['shard']}: {shard['num_queries']:3d} queries, "
            f"{shard['num_templates']} templates, {shard['num_matches']} matches"
        )

    # Retract the generated subscriptions: the engines shrink accordingly.
    for i in range(200):
        broker.cancel(f"generated-{i}")
    merged_after = broker.stats()["engine_stats"]
    print(
        "\nafter cancelling the generated subscriptions: "
        f"{merged['num_queries']} -> {merged_after['num_queries']} queries, "
        f"{merged['num_templates']} -> {merged_after['num_templates']} templates"
    )
    broker.close()


if __name__ == "__main__":
    main()
