#!/usr/bin/env python3
"""RSS feed monitoring: the Section 6.3 scenario at example scale.

A simulated RSS/Atom feed stream (several channels, repeated titles) is
published into the broker while a mix of hand-written and generated
subscriptions watch for correlated items:

* items cross-posted to the same channel within a window,
* different channels reusing the same title (possible syndication),
* plus a few hundred randomly generated inter-item join queries, as in the
  paper's throughput experiment.

Run with::

    python examples/rss_feed_monitoring.py
"""

import time

from repro import Broker
from repro.workloads.rss import RssStreamConfig, generate_rss_queries, generate_rss_stream

SAME_CHANNEL = (
    "S//item->i[.//channel_url->c] "
    "FOLLOWED BY{c=c, 40} "
    "S//item->i[.//channel_url->c]"
)
SYNDICATED_TITLE = (
    "S//item->i[.//title->t] "
    "FOLLOWED BY{t=t, INF} "
    "S//item->i[.//title->t]"
)


def main() -> None:
    broker = Broker(engine="mmqjp-vm", view_cache_size=1024, construct_outputs=False)

    same_channel = broker.subscribe(SAME_CHANNEL, subscription_id="same-channel")
    syndicated = broker.subscribe(SYNDICATED_TITLE, subscription_id="syndicated-title")
    for i, query in enumerate(generate_rss_queries(200, seed=23)):
        broker.subscribe(query, subscription_id=f"generated-{i}")

    stream_config = RssStreamConfig(num_items=150, num_channels=12, title_pool_size=60)
    print(
        f"publishing {stream_config.num_items} feed items from "
        f"{stream_config.num_channels} channels to {len(broker.subscriptions)} subscriptions ..."
    )

    start = time.perf_counter()
    deliveries = broker.publish_stream(generate_rss_stream(stream_config))
    elapsed = time.perf_counter() - start

    throughput = stream_config.num_items / elapsed
    print(f"\nprocessed {stream_config.num_items} items in {elapsed:.2f}s "
          f"({throughput:.1f} events/second)")
    print(f"total deliveries: {len(deliveries)}")
    print(f"  same-channel pairs     : {same_channel.num_results}")
    print(f"  syndicated-title pairs : {syndicated.num_results}")

    engine_stats = broker.stats()["engine_stats"]
    print(f"  query templates        : {engine_stats['num_templates']}")
    print(f"  join-state documents   : {engine_stats['state_documents']}")


if __name__ == "__main__":
    main()
