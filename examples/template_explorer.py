#!/usr/bin/env python3
"""Template explorer: how queries collapse into shared query templates.

This example peeks inside the Join Processor.  It registers the paper's
three example queries (Table 2) plus a batch of randomly generated ones,
then prints:

* how many distinct query templates the workload needs (vs. query count),
* the structure of each template (meta-variables, structural and value-join
  edges), and
* the relational conjunctive query ``CQT`` and its SQL rendering — the exact
  artifact the paper shipped to SQL Server.

Run with::

    python examples/template_explorer.py
"""

from repro.bench.harness import register_mmqjp
from repro.relational import render_sql
from repro.templates.cqt import RELATION_SCHEMAS
from repro.templates.enumerate import template_count_table
from repro.workloads.querygen import QueryWorkloadConfig, generate_queries
from repro.xmlmodel.schema import two_level_schema
from repro.xscl import parse_query
from repro.xscl.normalize import VariableCatalog, canonicalize_query

PAPER_QUERIES = {
    "Q1": "S//book->x1[.//author->x2][.//title->x3] FOLLOWED BY{x2=x5 AND x3=x6, 10} "
          "S//blog->x4[.//author->x5][.//title->x6]",
    "Q2": "S//book->x1[.//author->x2][.//category->x7] FOLLOWED BY{x2=x5 AND x7=x8, 10} "
          "S//blog->x4[.//author->x5][.//category->x8]",
    "Q3": "S//blog->x4[.//author->x5][.//title->x6] FOLLOWED BY{x5=x5 AND x6=x6, 10} "
          "S//blog->x4[.//author->x5][.//title->x6]",
}


def show_paper_queries() -> None:
    print("=" * 72)
    print("The three Table 2 queries share a single template (Figure 5):")
    print("=" * 72)
    catalog = VariableCatalog()
    queries = {
        qid: canonicalize_query(parse_query(text), catalog)
        for qid, text in PAPER_QUERIES.items()
    }
    registry = register_mmqjp(list(queries.values()))
    for template in registry.templates:
        print(f"\ntemplate #{template.template_id}")
        print(f"  meta variables   : {template.meta_order}")
        print(f"  structural edges : {template.structural_edges}")
        print(f"  value joins      : {template.value_edges}")
        print(f"  member queries   : {registry.queries_of(template)}")
        print("\n  RT relation rows:")
        for row in registry.rt_relation(template).rows:
            print(f"    {row}")
        cq = registry.cqt(template)
        print(f"\n  conjunctive query:\n    {cq}")
        schemas = dict(RELATION_SCHEMAS)
        schemas[template.rt_relation_name()] = template.rt_schema()
        print("\n  SQL rendering (what the paper shipped to SQL Server):")
        for line in render_sql(cq, schemas).splitlines():
            print(f"    {line}")


def show_random_workload() -> None:
    print("\n" + "=" * 72)
    print("1000 random queries over a 6-leaf feed-item schema:")
    print("=" * 72)
    schema = two_level_schema(6)
    queries = generate_queries(QueryWorkloadConfig(schema=schema, num_queries=1000))
    registry = register_mmqjp(queries)
    print(f"  queries registered : {registry.num_queries}")
    print(f"  distinct templates : {registry.num_templates}")
    for template_id, size in sorted(registry.template_sizes().items()):
        template = registry.templates[template_id]
        print(
            f"    template #{template_id}: {template.num_value_joins} value joins, "
            f"{size} member queries"
        )


def show_table3() -> None:
    print("\n" + "=" * 72)
    print("Table 3 — possible templates per number of value joins:")
    print("=" * 72)
    for row in template_count_table(3):
        print(
            f"  {row['value_joins']} value join(s): "
            f"{row['templates_flat']} flat-schema / {row['templates_complex']} complex-schema templates"
        )


def main() -> None:
    show_paper_queries()
    show_random_workload()
    show_table3()


if __name__ == "__main__":
    main()
