#!/usr/bin/env python3
"""Quickstart: register an inter-document query and publish two documents.

This walks the paper's running example (Section 1, Figures 1-2, Table 2):
query Q1 looks for a book announcement followed by a blog article written by
one of the book's authors and carrying the same title.

Run with::

    python examples/quickstart.py
"""

from repro import Broker, to_xml


def main() -> None:
    broker = Broker(engine="mmqjp")

    # Q1 from Table 2 of the paper.  Windows are in arbitrary time units;
    # here the blog posting must appear within 100 time units of the book.
    q1 = (
        "S//book->x1[.//author->x2][.//title->x3] "
        "FOLLOWED BY{x2=x5 AND x3=x6, 100} "
        "S//blog->x4[.//author->x5][.//title->x6]"
    )
    subscription = broker.subscribe(
        q1, callback=lambda result: print(f"-> match delivered for {result.subscription_id}")
    )

    # The book announcement of Figure 1 (as XML text).
    book = """
    <book>
      <authors><author>Danny Ayers</author><author>Andrew Watt</author></authors>
      <title>Beginning RSS and Atom Programming</title>
      <category>Scripting &amp; Programming</category>
      <publisher>Wrox</publisher>
    </book>
    """

    # The blog article of Figure 2.
    blog = """
    <blog>
      <url>http://dannyayers.com/topics/books/rss-book</url>
      <author>Danny Ayers</author>
      <title>Beginning RSS and Atom Programming</title>
      <category>Book Announcement</category>
      <description>Just heard ...</description>
    </blog>
    """

    print("publishing the book announcement ...")
    broker.publish(book, timestamp=1.0)

    print("publishing the blog article ...")
    deliveries = broker.publish(blog, timestamp=5.0)

    print(f"\n{len(deliveries)} match(es); the constructed output document:\n")
    print(to_xml(deliveries[0].output))

    print("\nsubscription received", subscription.num_results, "result(s)")
    print("broker stats:", broker.stats()["engine_stats"])


if __name__ == "__main__":
    main()
