#!/usr/bin/env python3
"""Quickstart: the session API — one config, real retraction, pluggable sinks.

This walks the paper's running example (Section 1, Figures 1-2, Table 2):
query Q1 looks for a book announcement followed by a blog article written by
one of the book's authors and carrying the same title.  Along the way it
shows the three pillars of the session API:

* :class:`repro.RuntimeConfig` — every knob in one validated object,
* :func:`repro.open_broker` — one context-managed entry point, whatever the
  runtime topology,
* ``Subscription.cancel()`` — true retraction: the engine's query count and
  join state actually shrink.

Run with::

    python examples/quickstart.py
"""

from repro import RuntimeConfig, open_broker, to_xml


def main() -> None:
    config = RuntimeConfig(engine="mmqjp")

    # Q1 from Table 2 of the paper.  Windows are in arbitrary time units;
    # here the blog posting must appear within 100 time units of the book.
    q1 = (
        "S//book->x1[.//author->x2][.//title->x3] "
        "FOLLOWED BY{x2=x5 AND x3=x6, 100} "
        "S//blog->x4[.//author->x5][.//title->x6]"
    )

    # The book announcement of Figure 1 (as XML text).
    book = """
    <book>
      <authors><author>Danny Ayers</author><author>Andrew Watt</author></authors>
      <title>Beginning RSS and Atom Programming</title>
      <category>Scripting &amp; Programming</category>
      <publisher>Wrox</publisher>
    </book>
    """

    # The blog article of Figure 2.
    blog = """
    <blog>
      <url>http://dannyayers.com/topics/books/rss-book</url>
      <author>Danny Ayers</author>
      <title>Beginning RSS and Atom Programming</title>
      <category>Book Announcement</category>
      <description>Just heard ...</description>
    </blog>
    """

    with open_broker(config) as broker:
        subscription = broker.subscribe(
            q1, callback=lambda result: print(f"-> match delivered for {result.subscription_id}")
        )

        print("publishing the book announcement ...")
        broker.publish(book, timestamp=1.0)

        print("publishing the blog article ...")
        deliveries = broker.publish(blog, timestamp=5.0)

        print(f"\n{len(deliveries)} match(es); the constructed output document:\n")
        print(to_xml(deliveries[0].output))

        print("\nsubscription received", subscription.num_results, "result(s)")
        stats = broker.stats()["engine_stats"]
        print("engine stats:", stats)

        # True retraction: cancelling the subscription deregisters the query
        # and reclaims its templates, plans, postings and join state.
        subscription.cancel()
        after = broker.stats()["engine_stats"]
        print(
            "\nafter cancel(): "
            f"num_queries {stats['num_queries']} -> {after['num_queries']}, "
            f"state_documents {stats['state_documents']} -> {after['state_documents']}"
        )


if __name__ == "__main__":
    main()
